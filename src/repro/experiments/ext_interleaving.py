"""Extension: secondary-ECC word layout study (paper §6.3).

Quantifies the design space the paper sketches: with HARP's active phase
complete (all direct-risk bits repaired), how much correction capability
does the secondary ECC need under aligned, split, and interleaved layouts?
Expected: aligned and split layouts are bounded by the on-die capability
(1 for SEC); interleaving ``w`` on-die words into one secondary word
multiplies the bound by up to ``w``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.atrisk import compute_ground_truth
from repro.controller.layout import (
    aligned_layout,
    interleaved_layout,
    required_secondary_capability,
    split_layout,
)
from repro.ecc.hamming import random_sec_code
from repro.memory.error_model import sample_word_profile
from repro.utils.rng import derive_rng
from repro.utils.tables import format_table

__all__ = ["InterleavingResult", "run", "render"]


@dataclass(frozen=True)
class InterleavingResult:
    """Required secondary capability per layout, after active profiling."""

    num_words: int
    at_risk_per_word: int
    #: layout label -> (worst capability after HARP active phase,
    #:                  worst capability with no profiling at all)
    rows: dict[str, tuple[int, int]]


def run(
    num_words: int = 16,
    at_risk_per_word: int = 5,
    interleave_ways: int = 2,
    seed: int = 2021,
) -> InterleavingResult:
    """Compute layout capability requirements over one simulated chip."""
    rng = derive_rng(seed, "ext-interleaving")
    code = random_sec_code(64, rng)
    truths = {}
    after_harp_missed = {}
    unprofiled_missed = {}
    for word_index in range(num_words):
        profile = sample_word_profile(code, at_risk_per_word, 0.5, rng)
        truth = compute_ground_truth(code, profile)
        truths[word_index] = truth
        # HARP active phase complete: every direct-risk bit is repaired.
        after_harp_missed[word_index] = truth.post_correction_at_risk - truth.direct_at_risk
        unprofiled_missed[word_index] = truth.post_correction_at_risk
    layouts = {
        "aligned (1 secondary word / on-die word)": aligned_layout(num_words, code.k),
        "split x2 (2 secondary words / on-die word)": split_layout(num_words, code.k, 2),
        f"interleaved x{interleave_ways} (1 secondary word / "
        f"{interleave_ways} on-die words)": interleaved_layout(
            num_words, code.k, interleave_ways
        ),
    }
    rows = {
        label: (
            required_secondary_capability(layout, truths, after_harp_missed),
            required_secondary_capability(layout, truths, unprofiled_missed),
        )
        for label, layout in layouts.items()
    }
    return InterleavingResult(
        num_words=num_words, at_risk_per_word=at_risk_per_word, rows=rows
    )


def render(result: InterleavingResult) -> str:
    headers = [
        "layout",
        "capability needed after HARP active phase",
        "capability needed with no profiling",
    ]
    body = [
        [label, after_harp, unprofiled]
        for label, (after_harp, unprofiled) in result.rows.items()
    ]
    return (
        f"Layout extension (§6.3): {result.num_words} on-die words, "
        f"{result.at_risk_per_word} at-risk bits each\n" + format_table(headers, body)
    )
