"""Fig 10: DRAM data-retention case study — system BER vs. active rounds.

A bit-repair mechanism perfectly repairs every profiled bit; the secondary
SEC ECC reactively covers what active profiling left.  The exhibit plots
the expected data bit error rate before (left panel) and after (right
panel) the secondary ECC, as a function of active profiling rounds, for
several raw bit error rates.

Methodology (DESIGN.md §4.5): the number of at-risk bits per word is
binomial in the at-risk rate ``q = RBER / p`` (an at-risk bit errs with
probability ``p``, so the observable raw BER is ``q * p``).  Words with 0
or 1 at-risk bits contribute zero post-correction BER under SEC, so we
simulate strata of 2..max_at_risk at-risk bits and weight each stratum by
its binomial probability — this is what lets RBER = 1e-8 be measured
without 10^8 words.  BER is evaluated under the all-charged (0xFF)
operating pattern, the true-cell worst case.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

import numpy as np

from repro.analysis.probabilities import WordBerAnalyzer
from repro.ecc.hamming import random_sec_code
from repro.experiments.config import CaseStudyConfig
from repro.experiments.reporting import log_round_ticks, percent, profiler_order
from repro.memory.error_model import sample_word_profile
from repro.profiling import PROFILER_REGISTRY
from repro.profiling.runner import simulate_word
from repro.utils.rng import derive_rng, derive_seed
from repro.utils.tables import format_series

__all__ = ["Fig10Result", "run", "render", "binomial_weight"]


def binomial_weight(n: int, count: int, rate: float) -> float:
    """P[Binomial(n, rate) == count]."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be within [0, 1]")
    return comb(n, count) * rate**count * (1.0 - rate) ** (n - count)


@dataclass(frozen=True)
class Fig10Result:
    """BER trajectories and rounds-to-zero per case-study cell."""

    config: CaseStudyConfig
    ticks: tuple[int, ...]
    #: (probability, rber, profiler) -> BER at each tick, before secondary.
    before: dict[tuple[float, float, str], tuple[float, ...]]
    #: (probability, rber, profiler) -> BER at each tick, after secondary.
    after: dict[tuple[float, float, str], tuple[float, ...]]
    #: (probability, profiler) -> first round with zero post-secondary BER
    #: across *all* simulated words, or None if not reached.  RBER only
    #: scales the curves, so this is RBER-independent.
    rounds_to_zero: dict[tuple[float, str], int | None]


def _word_trajectories(
    config: CaseStudyConfig, probability: float
) -> tuple[dict[tuple[int, str], list[list[float]]], dict[tuple[int, str], list[list[float]]], dict[str, list[int | None]]]:
    """Simulate all strata for one per-bit probability.

    Returns per-(stratum count, profiler) lists of per-word BER-at-tick
    trajectories (before, after) and per-profiler lists of per-word
    rounds-to-zero values.
    """
    ticks = log_round_ticks(config.num_rounds)
    before: dict[tuple[int, str], list[list[float]]] = {}
    after: dict[tuple[int, str], list[list[float]]] = {}
    to_zero: dict[str, list[int | None]] = {name: [] for name in config.profilers}
    charged = None
    for code_index in range(config.num_codes):
        code_rng = derive_rng(config.seed, "fig10-code", code_index)
        code = random_sec_code(config.k, code_rng)
        if charged is None:
            charged = np.ones(code.k, dtype=np.uint8)
        for count in range(2, config.max_at_risk + 1):
            for word_index in range(config.words_per_stratum):
                word_rng = derive_rng(
                    config.seed, "fig10-word", probability, code_index, count, word_index
                )
                profile = sample_word_profile(code, count, probability, word_rng)
                analyzer = WordBerAnalyzer(code, profile, charged)
                word_seed = derive_seed(
                    config.seed, "fig10-draws", probability, code_index, count, word_index
                )
                for name in config.profilers:
                    profiler = PROFILER_REGISTRY[name](code, seed=word_seed, pattern=config.pattern)
                    run_result = simulate_word(profiler, profile, config.num_rounds, word_seed)
                    trace = run_result.identified_per_round
                    before.setdefault((count, name), []).append(
                        [analyzer.unrepaired_ber(trace[tick - 1]) for tick in ticks]
                    )
                    after.setdefault((count, name), []).append(
                        [analyzer.residual_ber_after_secondary(trace[tick - 1]) for tick in ticks]
                    )
                    to_zero[name].append(_first_zero_round(analyzer, trace))
    return before, after, to_zero


def _first_zero_round(analyzer: WordBerAnalyzer, trace: list[frozenset[int]]) -> int | None:
    """First 1-based round with zero post-secondary BER (monotone search).

    The identified set only grows, so the residual BER is non-increasing;
    evaluation happens only at rounds where the set changes.
    """
    previous: frozenset[int] | None = None
    residual = None
    for round_index, identified in enumerate(trace):
        if previous is None or identified != previous:
            residual = analyzer.residual_ber_after_secondary(identified)
            previous = identified
        if residual == 0.0:
            return round_index + 1
    return None


def run(config: CaseStudyConfig = CaseStudyConfig()) -> Fig10Result:
    """Execute the case study over the full (probability, RBER) grid."""
    ticks = tuple(log_round_ticks(config.num_rounds))
    n_codeword = None
    before: dict[tuple[float, float, str], tuple[float, ...]] = {}
    after: dict[tuple[float, float, str], tuple[float, ...]] = {}
    rounds_to_zero: dict[tuple[float, str], int | None] = {}
    for probability in config.probabilities:
        stratum_before, stratum_after, to_zero = _word_trajectories(config, probability)
        if n_codeword is None:
            sample_code = random_sec_code(config.k, derive_rng(config.seed, "fig10-code", 0))
            n_codeword = sample_code.n
        for name in config.profilers:
            values = to_zero[name]
            rounds_to_zero[(probability, name)] = (
                None if any(v is None for v in values) else max(values)  # type: ignore[type-var]
            )
        for rber in config.rbers:
            rate = rber / probability
            for name in config.profilers:
                weighted_before = np.zeros(len(ticks))
                weighted_after = np.zeros(len(ticks))
                for count in range(2, config.max_at_risk + 1):
                    weight = binomial_weight(n_codeword, count, rate)
                    mean_before = np.mean(stratum_before[(count, name)], axis=0)
                    mean_after = np.mean(stratum_after[(count, name)], axis=0)
                    weighted_before += weight * mean_before
                    weighted_after += weight * mean_after
                before[(probability, rber, name)] = tuple(float(v) for v in weighted_before)
                after[(probability, rber, name)] = tuple(float(v) for v in weighted_after)
    return Fig10Result(
        config=config,
        ticks=ticks,
        before=before,
        after=after,
        rounds_to_zero=rounds_to_zero,
    )


def render(result: Fig10Result) -> str:
    """Text rendition: before/after panels per (probability, RBER)."""
    panels = []
    config = result.config
    for probability in config.probabilities:
        for rber in config.rbers:
            for label, table in (("before", result.before), ("after", result.after)):
                series = {
                    name: list(table[(probability, rber, name)])
                    for name in profiler_order(config.profilers)
                }
                title = (
                    f"Fig 10 ({label} secondary ECC): per-bit P={percent(probability)}, "
                    f"RBER={rber:.0e} — expected data BER"
                )
                panels.append(
                    format_series(title, series, x_values=list(result.ticks), x_label="round")
                )
    return "\n\n".join(panels)
