"""Fig 10: DRAM data-retention case study — system BER vs. active rounds.

A bit-repair mechanism perfectly repairs every profiled bit; the secondary
SEC ECC reactively covers what active profiling left.  The exhibit plots
the expected data bit error rate before (left panel) and after (right
panel) the secondary ECC, as a function of active profiling rounds, for
several raw bit error rates.

Methodology (DESIGN.md §4.5): the number of at-risk bits per word is
binomial in the at-risk rate ``q = RBER / p`` (an at-risk bit errs with
probability ``p``, so the observable raw BER is ``q * p``).  Words with 0
or 1 at-risk bits contribute zero post-correction BER under SEC, so we
simulate strata of 2..max_at_risk at-risk bits and weight each stratum by
its binomial probability — this is what lets RBER = 1e-8 be measured
without 10^8 words.  BER is evaluated under the all-charged (0xFF)
operating pattern, the true-cell worst case.

Execution rides the sweep shard engine: the grid decomposes into
picklable :class:`Fig10Shard` work units — one per (per-bit probability,
code, at-risk stratum) — each re-deriving its words from the experiment
seed alone, so ``run(config, jobs=N)`` is bit-identical to the serial
loop for every worker count and
:class:`~repro.experiments.backends.ExecutionBackend`.  Contiguous
shards share a code, so chunked scheduling keeps a code's
crafted-pattern and ground-truth caches on one worker.

Like the sweep path, the case study streams and resumes:
``run(config, resume=PATH)`` appends each completed shard to a
:class:`~repro.experiments.store.Fig10Store` JSONL file the moment a
backend delivers it, and a rerun with the same path skips every
persisted shard — a ``--scale paper`` case study killed mid-campaign
continues where it stopped, bit-identically to an uninterrupted run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache
from math import comb

import numpy as np

from repro.analysis.probabilities import WordBerAnalyzer
from repro.ecc.hamming import random_sec_code
from repro.experiments.backends import resolve_backend
from repro.experiments.config import CaseStudyConfig
from repro.experiments.reporting import log_round_ticks, percent, profiler_order
from repro.memory.error_model import sample_word_profile
from repro.profiling import PROFILER_REGISTRY
from repro.profiling.runner import simulate_word
from repro.utils.rng import derive_rng, derive_seed
from repro.utils.tables import format_series

__all__ = [
    "Fig10Result",
    "Fig10Shard",
    "shard_case_study",
    "run_case_shard",
    "run",
    "render",
    "binomial_weight",
]


def binomial_weight(n: int, count: int, rate: float) -> float:
    """P[Binomial(n, rate) == count]."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be within [0, 1]")
    return comb(n, count) * rate**count * (1.0 - rate) ** (n - count)


@dataclass(frozen=True)
class Fig10Result:
    """BER trajectories and rounds-to-zero per case-study cell."""

    config: CaseStudyConfig
    ticks: tuple[int, ...]
    #: (probability, rber, profiler) -> BER at each tick, before secondary.
    before: dict[tuple[float, float, str], tuple[float, ...]]
    #: (probability, rber, profiler) -> BER at each tick, after secondary.
    after: dict[tuple[float, float, str], tuple[float, ...]]
    #: (probability, profiler) -> first round with zero post-secondary BER
    #: across *all* simulated words, or None if not reached.  RBER only
    #: scales the curves, so this is RBER-independent.
    rounds_to_zero: dict[tuple[float, str], int | None]
    #: Shard keys a continue-past-quarantine run set aside (empty
    #: everywhere else); the affected strata are averaged over the words
    #: that did complete until a targeted re-run fills them in.
    quarantined: tuple[tuple[float, int, int], ...] = ()


@dataclass(frozen=True)
class Fig10Shard:
    """One picklable unit of case-study work: a (probability, code, stratum) cell.

    Like :class:`~repro.experiments.runner.SweepShard`, a shard carries
    the full config plus its coordinates and re-derives everything else
    (code, word profiles, failure draws) from the experiment seed, so
    execution is a pure function of the shard.
    """

    config: CaseStudyConfig
    probability: float
    code_index: int
    #: At-risk-bit count of the simulated stratum (2..max_at_risk).
    count: int


@lru_cache(maxsize=512)
def _fig10_code(seed: int, k: int, code_index: int):
    """The case study's ``code_index``-th random SEC code (cached per process)."""
    return random_sec_code(k, derive_rng(seed, "fig10-code", code_index))


def shard_case_study(config: CaseStudyConfig) -> list[Fig10Shard]:
    """Decompose a case-study config into shards, code-major per probability.

    Consecutive shards share a code across all strata, so chunked pool
    scheduling keeps each code's process-local caches together.
    """
    return [
        Fig10Shard(config=config, probability=probability, code_index=code_index, count=count)
        for probability in config.probabilities
        for code_index in range(config.num_codes)
        for count in range(2, config.max_at_risk + 1)
    ]


def run_case_shard(
    shard: Fig10Shard,
) -> tuple[
    dict[str, list[list[float]]], dict[str, list[list[float]]], dict[str, list[int | None]]
]:
    """Execute one shard: per-profiler word trajectories and rounds-to-zero.

    Returns ``(before, after, to_zero)`` keyed by profiler name; the word
    lists are ordered by word index, matching the serial loop exactly.
    """
    config = shard.config
    ticks = log_round_ticks(config.num_rounds)
    code = _fig10_code(config.seed, config.k, shard.code_index)
    charged = np.ones(code.k, dtype=np.uint8)
    before: dict[str, list[list[float]]] = {name: [] for name in config.profilers}
    after: dict[str, list[list[float]]] = {name: [] for name in config.profilers}
    to_zero: dict[str, list[int | None]] = {name: [] for name in config.profilers}
    for word_index in range(config.words_per_stratum):
        word_rng = derive_rng(
            config.seed, "fig10-word", shard.probability, shard.code_index, shard.count, word_index
        )
        profile = sample_word_profile(code, shard.count, shard.probability, word_rng)
        analyzer = WordBerAnalyzer(code, profile, charged)
        word_seed = derive_seed(
            config.seed, "fig10-draws", shard.probability, shard.code_index, shard.count, word_index
        )
        for name in config.profilers:
            profiler = PROFILER_REGISTRY[name](code, seed=word_seed, pattern=config.pattern)
            run_result = simulate_word(profiler, profile, config.num_rounds, word_seed)
            trace = run_result.identified_per_round
            before[name].append([analyzer.unrepaired_ber(trace[tick - 1]) for tick in ticks])
            after[name].append(
                [analyzer.residual_ber_after_secondary(trace[tick - 1]) for tick in ticks]
            )
            to_zero[name].append(_first_zero_round(analyzer, trace))
    return before, after, to_zero


def _first_zero_round(analyzer: WordBerAnalyzer, trace: list[frozenset[int]]) -> int | None:
    """First 1-based round with zero post-secondary BER (monotone search).

    The identified set only grows, so the residual BER is non-increasing;
    evaluation happens only at rounds where the set changes.
    """
    previous: frozenset[int] | None = None
    residual = None
    for round_index, identified in enumerate(trace):
        if previous is None or identified != previous:
            residual = analyzer.residual_ber_after_secondary(identified)
            previous = identified
        if residual == 0.0:
            return round_index + 1
    return None


def _shard_key(shard: Fig10Shard) -> tuple[float, int, int]:
    """A shard's store key: its (probability, code, stratum) coordinates."""
    return (shard.probability, shard.code_index, shard.count)


def _timed_case_shard(
    shard: Fig10Shard,
) -> tuple[
    tuple[dict[str, list[list[float]]], dict[str, list[list[float]]], dict[str, list[int | None]]],
    float,
]:
    """Pool worker: :func:`run_case_shard` plus its wall-clock seconds.

    The timing never enters the aggregation — it only rides into the
    resume store's records so ``repro store PATH summary`` can estimate
    an ETA — so results stay bit-identical to the untimed worker.
    """
    started = time.perf_counter()
    result = run_case_shard(shard)
    return result, time.perf_counter() - started


def run(
    config: CaseStudyConfig = CaseStudyConfig(),
    jobs: int | None = None,
    backend=None,
    resume: str | None = None,
    progress: bool | float = False,
) -> Fig10Result:
    """Execute the case study over the full (probability, RBER) grid.

    Args:
        config: the case-study configuration.
        jobs: worker processes for shard execution (``None``/``1`` serial,
            ``0`` one per CPU); every setting is bit-identical.
        backend: execution backend instance or spec string (``serial``,
            ``process``, ``socket``, ``socket://HOST:PORT``) — the
            :class:`Fig10Shard` units ship over the socket protocol just
            like sweep shards; ``None`` infers from ``jobs``.
        resume: path to a :class:`~repro.experiments.store.Fig10Store`
            JSONL file.  Completed shards stream to it as backends
            deliver them, already-persisted shards are skipped on
            restart, and the aggregated result is bit-identical to an
            uninterrupted run.
        progress: print periodic grid-coverage/ETA lines to stderr via
            :class:`~repro.experiments.monitor.ProgressReporter`
            (``True`` = default cadence, a float = seconds between
            lines); purely observational.

    A backend in continue-past-quarantine mode may set shards aside;
    their keys come back on ``Fig10Result.quarantined`` (and as
    ``quarantine`` records in the ``resume`` store) and the affected
    strata average over the words that did complete.
    """
    from repro.experiments.store import Fig10Store, case_config_to_dict

    ticks = tuple(log_round_ticks(config.num_rounds))
    shards = shard_case_study(config)
    # Resolve (and validate) the backend before any store side effects:
    # a bad spec must not leave a header-only store file behind.
    executor = resolve_backend(backend, jobs)
    store: Fig10Store | None = None
    persisted: dict[tuple[float, int, int], tuple] = {}
    if resume is not None:
        if case_config_to_dict(config) is None:
            raise ValueError(
                "resume requires the library CaseStudyConfig: an opaque "
                "config cannot be verified against the store, so stale "
                "shards from a different experiment could silently leak "
                "into the result"
            )
        store = Fig10Store(resume)
        stored_config, persisted = store.load()
        if persisted and stored_config is None:
            raise ValueError(
                f"{resume} holds shards but does not record the case-study "
                "config that produced them; refusing to reuse shards that "
                "cannot be verified (use a fresh --resume path)"
            )
        if stored_config is not None and stored_config != config:
            raise ValueError(
                f"{resume} was written by a different case-study config; "
                "refusing to mix results (use a fresh --resume path)"
            )
        store.open(config)
    from repro.experiments.monitor import progress_reporter, quarantined_keys

    pending = [shard for shard in shards if _shard_key(shard) not in persisted]
    reporter = progress_reporter(progress, len(shards), "shards")
    if reporter is not None:
        reporter.start(done=len(persisted))
    results_by_key: dict[tuple[float, int, int], tuple] = dict(persisted)
    quarantined: tuple[tuple[float, int, int], ...] = ()
    try:
        # One chunk = one code's strata, keeping its caches on one
        # worker; completion order, so every finished shard becomes
        # durable immediately (mirrors run_sweep).
        for index, (result, elapsed) in executor.imap_unordered(
            _timed_case_shard, pending, chunksize=max(1, config.max_at_risk - 1)
        ):
            key = _shard_key(pending[index])
            results_by_key[key] = result
            if store is not None:
                store.append(key, result, seconds=elapsed)
            if reporter is not None:
                reporter.completed(elapsed)
        quarantined = quarantined_keys(executor, pending, _shard_key, store=store)
        if reporter is not None:
            reporter.finish(quarantined=len(quarantined))
    finally:
        if store is not None:
            store.close()

    #: (probability, count, profiler) -> per-word trajectories, in the
    #: serial loop's (code, word) order.
    stratum_before: dict[tuple[float, int, str], list[list[float]]] = {}
    stratum_after: dict[tuple[float, int, str], list[list[float]]] = {}
    to_zero: dict[tuple[float, str], list[int | None]] = {}
    # Aggregate in grid order regardless of completion or resume order,
    # so the result is indistinguishable from a serial run.
    for shard in shards:
        result = results_by_key.get(_shard_key(shard))
        if result is None:
            continue  # quarantined under continue-past-quarantine
        shard_before, shard_after, shard_zero = result
        for name in config.profilers:
            stratum_before.setdefault((shard.probability, shard.count, name), []).extend(
                shard_before[name]
            )
            stratum_after.setdefault((shard.probability, shard.count, name), []).extend(
                shard_after[name]
            )
            to_zero.setdefault((shard.probability, name), []).extend(shard_zero[name])

    n_codeword = _fig10_code(config.seed, config.k, 0).n
    before: dict[tuple[float, float, str], tuple[float, ...]] = {}
    after: dict[tuple[float, float, str], tuple[float, ...]] = {}
    rounds_to_zero: dict[tuple[float, str], int | None] = {}
    for probability in config.probabilities:
        for name in config.profilers:
            values = to_zero.get((probability, name), [])
            rounds_to_zero[(probability, name)] = (
                None
                if not values or any(v is None for v in values)
                else max(values)  # type: ignore[type-var]
            )
        for rber in config.rbers:
            rate = rber / probability
            for name in config.profilers:
                weighted_before = np.zeros(len(ticks))
                weighted_after = np.zeros(len(ticks))
                for count in range(2, config.max_at_risk + 1):
                    trajectories = stratum_before.get((probability, count, name))
                    if trajectories is None:
                        continue  # every shard of this stratum quarantined
                    weight = binomial_weight(n_codeword, count, rate)
                    mean_before = np.mean(trajectories, axis=0)
                    mean_after = np.mean(stratum_after[(probability, count, name)], axis=0)
                    weighted_before += weight * mean_before
                    weighted_after += weight * mean_after
                before[(probability, rber, name)] = tuple(float(v) for v in weighted_before)
                after[(probability, rber, name)] = tuple(float(v) for v in weighted_after)
    return Fig10Result(
        config=config,
        ticks=ticks,
        before=before,
        after=after,
        rounds_to_zero=rounds_to_zero,
        quarantined=quarantined,
    )


def render(result: Fig10Result) -> str:
    """Text rendition: before/after panels per (probability, RBER)."""
    panels = []
    config = result.config
    for probability in config.probabilities:
        for rber in config.rbers:
            for label, table in (("before", result.before), ("after", result.after)):
                series = {
                    name: list(table[(probability, rber, name)])
                    for name in profiler_order(config.profilers)
                }
                title = (
                    f"Fig 10 ({label} secondary ECC): per-bit P={percent(probability)}, "
                    f"RBER={rber:.0e} — expected data BER"
                )
                panels.append(
                    format_series(title, series, x_values=list(result.ticks), x_label="round")
                )
    return "\n\n".join(panels)
