"""Extension: heterogeneous per-bit error probabilities (paper §3.1).

The paper's main sweep fixes one per-bit probability per configuration,
but notes (citing REAPER [147]) that real retention-error probabilities
are normally distributed across bits.  This extension runs the
direct-coverage comparison with per-bit probabilities drawn from a clipped
normal distribution and verifies HARP's advantage is not an artifact of
probability homogeneity: low-probability bits slow *every* profiler down,
but HARP still needs only each bit to fail once on the bypass path, while
Naive additionally needs co-failures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.atrisk import compute_ground_truth
from repro.ecc.hamming import random_sec_code
from repro.experiments.runner import metrics_for_run
from repro.memory.error_model import normal_probability_profile
from repro.profiling import PROFILER_REGISTRY
from repro.profiling.runner import simulate_word
from repro.utils.rng import derive_rng, derive_seed
from repro.utils.tables import format_table

__all__ = ["HeterogeneousResult", "run", "render"]


@dataclass(frozen=True)
class HeterogeneousResult:
    """Pooled direct coverage per profiler under normal per-bit p."""

    mean: float
    std: float
    num_rounds: int
    num_words: int
    #: profiler -> (final pooled coverage, mean first-direct round)
    rows: dict[str, tuple[float, float]]


def run(
    mean: float = 0.4,
    std: float = 0.25,
    at_risk_per_word: int = 4,
    num_codes: int = 3,
    words_per_code: int = 6,
    num_rounds: int = 64,
    profilers: tuple[str, ...] = ("Naive", "BEEP", "HARP-U"),
    seed: int = 2021,
) -> HeterogeneousResult:
    """Run the comparison with clipped-normal per-bit probabilities."""
    words = []
    for code_index in range(num_codes):
        code = random_sec_code(64, derive_rng(seed, "het-code", code_index))
        for word_index in range(words_per_code):
            word_rng = derive_rng(seed, "het-word", code_index, word_index)
            profile = normal_probability_profile(
                code, at_risk_per_word, mean, std, word_rng
            )
            truth = compute_ground_truth(code, profile)
            word_seed = derive_seed(seed, "het-draws", code_index, word_index)
            words.append((code, profile, truth, word_seed))
    rows: dict[str, tuple[float, float]] = {}
    for name in profilers:
        identified = 0
        total = 0
        first_rounds = []
        for code, profile, truth, word_seed in words:
            profiler = PROFILER_REGISTRY[name](code, seed=word_seed)
            result = simulate_word(profiler, profile, num_rounds, word_seed)
            metrics = metrics_for_run(result, truth, num_rounds)
            identified += metrics.direct_identified[-1]
            total += metrics.direct_total
            first_rounds.append(metrics.first_direct_round)
        rows[name] = (
            identified / total if total else 1.0,
            sum(first_rounds) / len(first_rounds),
        )
    return HeterogeneousResult(
        mean=mean,
        std=std,
        num_rounds=num_rounds,
        num_words=len(words),
        rows=rows,
    )


def render(result: HeterogeneousResult) -> str:
    headers = ["profiler", "final direct coverage", "mean first-direct round"]
    body = [
        [name, f"{coverage:.3f}", f"{first:.1f}"]
        for name, (coverage, first) in result.rows.items()
    ]
    return (
        f"Heterogeneous-probability extension: p ~ N({result.mean}, {result.std}^2) "
        f"clipped to [0,1], {result.num_words} words, {result.num_rounds} rounds\n"
        + format_table(headers, body)
    )
