"""Experiment configurations and Monte-Carlo scale presets.

The paper's full evaluation burned ~14 CPU-years in C++ (its §A.8); the
library exposes the same experiments with a configurable scale.  Presets:

* ``UNIT`` — seconds; used by the integration test-suite.
* ``BENCH`` — tens of seconds; used by the benchmark harness to print each
  exhibit's rows.
* ``FULL`` — minutes-to-hours; the single-machine default for real runs.
* ``PAPER`` — paper-scale statistical power; sized for the distributed
  socket backend plus the streaming shard store (``run_sweep(config,
  backend="socket://...", resume=PATH)``), where cells parallelize
  across machines and each finished cell becomes durable on disk the
  moment a worker delivers it.  Wall-clock is tracked in
  ``benchmarks/results/sweep_scaling.txt``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "SweepConfig",
    "CaseStudyConfig",
    "FleetConfig",
    "UNIT",
    "BENCH",
    "FULL",
    "PAPER",
    "scaled",
]

#: Profilers evaluated in the paper's coverage figures (Figs 6-9).
DEFAULT_PROFILERS = ("Naive", "BEEP", "HARP-U", "HARP-A", "HARP-A+BEEP")


@dataclass(frozen=True)
class SweepConfig:
    """Configuration of the Fig 6-9 profiler sweep.

    Attributes mirror the paper's §7.1.2 methodology: random (71, 64) SEC
    Hamming codes, 2-5 injected pre-correction at-risk bits per word,
    per-bit error probabilities 25-100%, 128 rounds of the random data
    pattern (with per-round inversion).
    """

    k: int = 64
    num_codes: int = 8
    words_per_code: int = 12
    num_rounds: int = 128
    error_counts: tuple[int, ...] = (2, 3, 4, 5)
    probabilities: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)
    profilers: tuple[str, ...] = field(default=DEFAULT_PROFILERS)
    pattern: str = "random"
    seed: int = 2021

    def __post_init__(self) -> None:
        if self.num_codes < 1 or self.words_per_code < 1 or self.num_rounds < 1:
            raise ValueError("scale parameters must be positive")
        for count in self.error_counts:
            if count < 1:
                raise ValueError("error counts must be positive")
        for probability in self.probabilities:
            if not 0.0 < probability <= 1.0:
                raise ValueError("per-bit probabilities must be in (0, 1]")


@dataclass(frozen=True)
class CaseStudyConfig:
    """Configuration of the Fig 10 data-retention case study."""

    k: int = 64
    num_codes: int = 4
    words_per_stratum: int = 8
    num_rounds: int = 128
    rbers: tuple[float, ...] = (1e-4, 1e-6, 1e-8)
    probabilities: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)
    profilers: tuple[str, ...] = ("Naive", "BEEP", "HARP-U", "HARP-A")
    #: Strata of at-risk-bit counts to simulate; words with 0 or 1 at-risk
    #: bits contribute zero post-correction BER under SEC and are handled
    #: analytically.
    max_at_risk: int = 6
    pattern: str = "random"
    seed: int = 2021

    def __post_init__(self) -> None:
        for rber in self.rbers:
            if not 0.0 < rber < 1.0:
                raise ValueError("RBER must be in (0, 1)")
        if self.max_at_risk < 2:
            raise ValueError("max_at_risk must be >= 2")


@dataclass(frozen=True)
class FleetConfig:
    """Configuration of the fleet-scale field simulation (``repro fleet``).

    A population of ``num_chips`` chips is drawn from the field-fault
    mix model (:class:`~repro.memory.faults.FaultMixModel`): per-mode
    Poisson rates for single-cell/row/column/bank faults, a lognormal
    per-chip rate multiplier, and per-mode at-risk densities.  Each
    chip's topology lowers onto per-word
    :class:`~repro.memory.error_model.WordErrorProfile` objects; words
    holding ≥ 2 at-risk bits are profiled for ``num_rounds`` rounds
    (single at-risk bits are SEC-correctable and handled analytically),
    and a row-sparing repair stage
    (:func:`~repro.repair.policy.plan_row_sparing`) spends the per-chip
    ``spare_rows`` / ``spare_bits`` budget on what profiling identified.

    Sharding: light chips batch ``chips_per_shard`` per shard; a chip
    whose profiled-word count exceeds ``slice_words`` becomes a *heavy*
    chip whose cell is split into sub-cell slices of ~``slice_words``
    words each, shared across workers (``slice_words=0`` disables
    sub-cell sharding — whole-cell mode, used for benchmarks).
    """

    num_chips: int = 1000
    k: int = 32
    #: Distinct on-die SEC codes across the fleet (chips cycle through
    #: them, so per-code caches amortize across the population).
    num_codes: int = 4
    num_rounds: int = 64
    probability: float = 0.75
    profiler: str = "HARP-U"
    pattern: str = "random"
    rows: int = 32
    words_per_row: int = 4
    single_rate: float = 0.30
    row_rate: float = 0.09
    column_rate: float = 0.06
    bank_rate: float = 0.03
    variability_sigma: float = 1.2
    row_density: float = 0.25
    column_density: float = 0.25
    bank_density: float = 0.01
    max_at_risk_per_word: int = 8
    spare_rows: int = 2
    spare_bits: int = 16
    chips_per_shard: int = 64
    slice_words: int = 8
    seed: int = 2021

    def __post_init__(self) -> None:
        if self.num_chips < 1 or self.num_codes < 1 or self.num_rounds < 1:
            raise ValueError("scale parameters must be positive")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("per-bit probability must be in (0, 1]")
        if self.rows < 1 or self.words_per_row < 1:
            raise ValueError("geometry dimensions must be positive")
        if self.max_at_risk_per_word < 2:
            raise ValueError("max_at_risk_per_word must be >= 2")
        if self.chips_per_shard < 1:
            raise ValueError("chips_per_shard must be >= 1")
        if self.slice_words < 0:
            raise ValueError("slice_words must be >= 0 (0 = whole-cell shards)")
        if self.spare_rows < 0 or self.spare_bits < 0:
            raise ValueError("repair budgets must be >= 0")


#: Tiny scale for tests.
UNIT = SweepConfig(
    num_codes=2,
    words_per_code=4,
    num_rounds=32,
    error_counts=(2, 4),
    probabilities=(0.5, 1.0),
)

#: Benchmark scale: full parameter grid, reduced Monte-Carlo samples.
BENCH = SweepConfig(num_codes=5, words_per_code=8, num_rounds=128)

#: Single-machine scale (still far below the paper's 14 CPU-years).
FULL = SweepConfig(num_codes=30, words_per_code=40, num_rounds=128)

#: Paper-scale statistical power: 2500 Monte-Carlo words per cell (>2x
#: FULL), enough that every Fig 6-9 curve's 95% binomial half-width
#: drops below one percentage point.  Meant for the distributed
#: backends with a ``--resume`` shard store, not a single process.
PAPER = SweepConfig(num_codes=50, words_per_code=50, num_rounds=128)


def scaled(config: SweepConfig, factor: float) -> SweepConfig:
    """Scale the Monte-Carlo sample counts of a config by ``factor``."""
    if factor <= 0:
        raise ValueError("scale factor must be positive")
    return replace(
        config,
        num_codes=max(1, round(config.num_codes * factor)),
        words_per_code=max(1, round(config.words_per_code * factor)),
    )
