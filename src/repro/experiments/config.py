"""Experiment configurations and Monte-Carlo scale presets.

The paper's full evaluation burned ~14 CPU-years in C++ (its §A.8); the
library exposes the same experiments with a configurable scale.  Presets:

* ``UNIT`` — seconds; used by the integration test-suite.
* ``BENCH`` — tens of seconds; used by the benchmark harness to print each
  exhibit's rows.
* ``FULL`` — minutes-to-hours; the single-machine default for real runs.
* ``PAPER`` — paper-scale statistical power; sized for the distributed
  socket backend plus the streaming shard store (``run_sweep(config,
  backend="socket://...", resume=PATH)``), where cells parallelize
  across machines and each finished cell becomes durable on disk the
  moment a worker delivers it.  Wall-clock is tracked in
  ``benchmarks/results/sweep_scaling.txt``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["SweepConfig", "CaseStudyConfig", "UNIT", "BENCH", "FULL", "PAPER", "scaled"]

#: Profilers evaluated in the paper's coverage figures (Figs 6-9).
DEFAULT_PROFILERS = ("Naive", "BEEP", "HARP-U", "HARP-A", "HARP-A+BEEP")


@dataclass(frozen=True)
class SweepConfig:
    """Configuration of the Fig 6-9 profiler sweep.

    Attributes mirror the paper's §7.1.2 methodology: random (71, 64) SEC
    Hamming codes, 2-5 injected pre-correction at-risk bits per word,
    per-bit error probabilities 25-100%, 128 rounds of the random data
    pattern (with per-round inversion).
    """

    k: int = 64
    num_codes: int = 8
    words_per_code: int = 12
    num_rounds: int = 128
    error_counts: tuple[int, ...] = (2, 3, 4, 5)
    probabilities: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)
    profilers: tuple[str, ...] = field(default=DEFAULT_PROFILERS)
    pattern: str = "random"
    seed: int = 2021

    def __post_init__(self) -> None:
        if self.num_codes < 1 or self.words_per_code < 1 or self.num_rounds < 1:
            raise ValueError("scale parameters must be positive")
        for count in self.error_counts:
            if count < 1:
                raise ValueError("error counts must be positive")
        for probability in self.probabilities:
            if not 0.0 < probability <= 1.0:
                raise ValueError("per-bit probabilities must be in (0, 1]")


@dataclass(frozen=True)
class CaseStudyConfig:
    """Configuration of the Fig 10 data-retention case study."""

    k: int = 64
    num_codes: int = 4
    words_per_stratum: int = 8
    num_rounds: int = 128
    rbers: tuple[float, ...] = (1e-4, 1e-6, 1e-8)
    probabilities: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)
    profilers: tuple[str, ...] = ("Naive", "BEEP", "HARP-U", "HARP-A")
    #: Strata of at-risk-bit counts to simulate; words with 0 or 1 at-risk
    #: bits contribute zero post-correction BER under SEC and are handled
    #: analytically.
    max_at_risk: int = 6
    pattern: str = "random"
    seed: int = 2021

    def __post_init__(self) -> None:
        for rber in self.rbers:
            if not 0.0 < rber < 1.0:
                raise ValueError("RBER must be in (0, 1)")
        if self.max_at_risk < 2:
            raise ValueError("max_at_risk must be >= 2")


#: Tiny scale for tests.
UNIT = SweepConfig(
    num_codes=2,
    words_per_code=4,
    num_rounds=32,
    error_counts=(2, 4),
    probabilities=(0.5, 1.0),
)

#: Benchmark scale: full parameter grid, reduced Monte-Carlo samples.
BENCH = SweepConfig(num_codes=5, words_per_code=8, num_rounds=128)

#: Single-machine scale (still far below the paper's 14 CPU-years).
FULL = SweepConfig(num_codes=30, words_per_code=40, num_rounds=128)

#: Paper-scale statistical power: 2500 Monte-Carlo words per cell (>2x
#: FULL), enough that every Fig 6-9 curve's 95% binomial half-width
#: drops below one percentage point.  Meant for the distributed
#: backends with a ``--resume`` shard store, not a single process.
PAPER = SweepConfig(num_codes=50, words_per_code=50, num_rounds=128)


def scaled(config: SweepConfig, factor: float) -> SweepConfig:
    """Scale the Monte-Carlo sample counts of a config by ``factor``."""
    if factor <= 0:
        raise ValueError("scale factor must be positive")
    return replace(
        config,
        num_codes=max(1, round(config.num_codes * factor)),
        words_per_code=max(1, round(config.words_per_code * factor)),
    )
