"""Pluggable execution backends for the Monte-Carlo shard engine.

The paper's artifact parallelizes its Monte-Carlo jobs across machines
and aggregates raw output files afterwards (§A.7).  This module is the
"across machines" half for the Python reproduction: every exhibit's work
decomposes into self-contained, picklable shards (see
:mod:`repro.experiments.runner`), and a backend decides *where* a shard
executes.  Because shards re-derive all state from seeds, the results
are bit-identical regardless of backend, worker count, or scheduling
order.

Backends
========

* :class:`SerialBackend` — in-process loop (``--backend serial``).
* :class:`ProcessPoolBackend` — a local
  ``concurrent.futures.ProcessPoolExecutor`` (``--backend process``,
  the default whenever ``jobs > 1``).
* :class:`SocketBackend` — a TCP work server.  Shards travel to worker
  processes as authenticated ``repro-wire-v1`` frames (see
  :mod:`repro.experiments.wire`); workers are either spawned locally by
  the backend (``spawn_workers=N``) or started on any machine with the
  repo installed via::

      python -m repro worker --connect HOST:PORT

  Workers pull chunks of shards, execute them with their own warm
  process-local caches, and stream results back; a worker that
  disconnects mid-chunk has its chunk requeued for the survivors.

Every backend yields results **in shard order** through
:meth:`ExecutionBackend.imap`, so callers can stream completed cells to
a :class:`~repro.experiments.store.ShardStore` while later shards are
still in flight.

Campaign hardening (socket backend)
===================================

Paper-scale campaigns run for hours across many machines, so the socket
backend carries four operational safeguards on top of the base
protocol (see ``docs/distributed.md`` for the runbook):

* **Auth token** — when the server is constructed with ``auth_token``
  (CLI ``--auth-token``, or the ``REPRO_AUTH_TOKEN`` environment
  variable), the worker must present the same secret in its ``hello``
  frame; mismatches receive a ``reject`` frame and are dropped before
  any pickle from the connection is trusted with work.
* **Heartbeats** — a worker streams ``heartbeat`` frames while it
  executes a chunk (the server tells it the cadence in the ``welcome``
  frame).  A server that hears nothing for ``heartbeat_timeout``
  seconds presumes the worker dead — hard-killed, network-partitioned,
  or wedged — and requeues its chunk for the survivors, instead of
  blocking forever on a TCP peer that will never answer.
* **Retry budget** — every requeue of a chunk spends one unit of its
  ``max_chunk_retries`` budget.  A chunk that keeps killing workers
  (a poison shard) is quarantined once the budget is exhausted: the
  map aborts with the chunk's identity instead of feeding every worker
  that joins into the same crash loop.  (With ``--resume``, every cell
  completed before the abort is already durable.)
* **Start barrier** — ``workers_expected=N`` (CLI
  ``--workers-expected N``) holds all task dispatch until ``N`` workers
  have joined, so a paper-scale campaign cannot silently start grinding
  on a single straggler while the rest of the fleet is still booting.
* **Continue past quarantine** — ``continue_past_quarantine=True``
  (CLI ``--continue-past-quarantine``) changes what budget exhaustion
  means: instead of aborting the map, the poison chunk is set aside,
  the rest of the grid completes, and the skipped shard indices are
  published as :attr:`SocketBackend.quarantined_shards` for the
  drivers to report (and record in a ``--resume`` store) so a
  targeted re-run can retry exactly those cells.
* **Status port** — ``status_port=PORT`` (CLI ``--status-port``)
  serves a live one-line JSON snapshot of the map — fleet size,
  per-worker heartbeat age and in-flight chunk, queue depth,
  completed/total chunks, retry and quarantine counts — through
  :class:`~repro.experiments.monitor.StatusServer`; read it with
  ``python -m repro status HOST:PORT`` (see ``docs/operations.md``).

Wire format (``repro-wire-v1``)
===============================

Every message on the **work port** is one :mod:`repro.experiments.wire`
frame: a ``RPW1`` preamble with explicit header/blob lengths, a JSON
header carrying the frame kind, the map's campaign id, a per-direction
sequence number and the tagged-node payload, binary blob sections for
bulk data, and a trailing HMAC-SHA256 verified with
:func:`hmac.compare_digest` (keyed from the shared secret when the
fleet has one, from a fixed integrity label otherwise).  The payload is
always a tuple whose first element names the frame kind:

==========  =========  ===================================================
frame       direction  payload
==========  =========  ===================================================
hello       w → s      ``("hello", worker_pid, auth_token_or_None)``
welcome     s → w      ``("welcome", heartbeat_interval, campaign_id,
                       mac_mode)`` — the worker adopts the campaign id
                       and MAC mode (``"token"``/``"default"``) from it
reject      s → w      ``("reject", reason)`` — handshake refused
task        s → w      ``("task", chunk_index, worker_fn, [shards...])``
heartbeat   w → s      ``("heartbeat",)`` — streamed while a task runs
result      w → s      ``("result", chunk_index, [results...])``
error       w → s      ``("error", chunk_index, traceback_text)``
badframe    w → s      ``("badframe", reason)`` — the worker received a
                       frame it could not use; the server resends the
                       in-flight task (transport retry, no budget spent)
nack        s → w      ``("nack",)`` — the server received an unusable
                       frame; the worker resends its last result
leave       w → s      ``("leave",)`` — drain goodbye: dispatch nothing
                       more, no retry-budget charge (elastic fleets)
shutdown    s → w      ``("shutdown",)`` — session over, worker may exit
==========  =========  ===================================================

A frame that fails its MAC or decode is rejected *per frame* (the
``badframe``/``nack`` recovery above) instead of killing the session;
duplicated or replayed frames are dropped by their stale sequence
numbers; only structural stream damage (bad magic, absurd lengths)
drops the connection — and then the in-flight chunk requeues and the
worker's linger loop reconnects.  The legacy length-prefixed *pickle*
codec survives behind the explicit ``--wire pickle`` flag (both sides
must agree); it has no MAC and trusts its peer with code execution, so
it is for old trusted clusters only.

The **status port** is a different protocol entirely — line-delimited
JSON, one ``repro-status-v1`` snapshot per connection, schema in
:mod:`repro.experiments.monitor` — so operators can poll it with
``curl``/``nc`` without speaking the work protocol.

Security note: under ``--wire v1`` the only code reference a frame can
carry is a module-level *name* (resolved by import, never pickle
construction), and every frame is authenticated — with a shared secret
this blocks work injection by peers that do not know it.  The MAC does
not encrypt: the hello's join token and the shard payloads are readable
on the wire, so confidentiality still needs network isolation or a TLS
tunnel.  The status port is read-only and carries no secrets, but binds
the same host as the work port: routable bind, routable status.

Elastic fleets and graceful degradation
=======================================

Workers may join *after* dispatch has started (the
``workers_expected`` barrier only gates the first task) and leave
mid-campaign: a worker that reaches its ``--max-chunks`` budget or
receives SIGTERM sends a ``leave`` frame, drains cleanly, and is never
charged against any retry budget; the status snapshot counts the churn
(``fleet.left_total``).  At the end of a ``--continue-past-quarantine``
map, the auto-retry pass (``auto_retry=True``) re-runs every
quarantined multi-shard chunk at one-shard granularity, healing the
shards that were merely collateral and shrinking the reported poison
set to exactly the bad shards.  ``max_buffered_chunks`` bounds how many
completed chunks the server holds for a slow consumer before pausing
dispatch (backpressure).
"""

from __future__ import annotations

import hmac
import os
import pickle
import random
import secrets
import select
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
import traceback
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Iterator, Sequence

from repro.experiments.monitor import STATUS_FORMAT, ThroughputHistory
from repro.experiments.wire import (
    MAX_FRAME,
    WIRE_CHOICES,
    FrameRejected,
    StreamDesync,
    make_session,
)

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "SocketBackend",
    "WorkServer",
    "SharedFleetBackend",
    "MapCancelled",
    "WorkerRejectedError",
    "resolve_backend",
    "resolve_jobs",
    "run_worker",
]

#: Environment variable both server and worker read for the shared secret.
AUTH_TOKEN_ENV = "REPRO_AUTH_TOKEN"

#: Seconds of silence from a busy worker before its chunk is requeued.
DEFAULT_HEARTBEAT_TIMEOUT = 60.0

#: Requeues a chunk may spend on worker deaths before being quarantined.
DEFAULT_CHUNK_RETRIES = 2

#: In-session transport retries (task resends after ``badframe``, result
#: resends after ``nack``) before the connection is declared hopeless and
#: dropped — at which point the ordinary requeue/retry-budget machinery
#: takes over.  Generous: a chaos test corrupting 5% of frames should
#: never exhaust it, while a deterministic per-frame failure (code skew)
#: exhausts it in well under a second.
_TRANSPORT_RETRIES = 8

#: Worker reconnect backoff (linger loop): first delay and growth cap.
_BACKOFF_BASE = 0.2
_BACKOFF_CAP = 5.0


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` knob: ``None``→1, ``0``→one per CPU."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _chunked(shards: Sequence, chunksize: int) -> list[list]:
    chunksize = max(1, int(chunksize))
    return [list(shards[i : i + chunksize]) for i in range(0, len(shards), chunksize)]


class ExecutionBackend(ABC):
    """Strategy for mapping a picklable worker function over shards.

    ``worker`` must be a module-level pure function of one shard so it
    pickles by reference; results come back in shard order for every
    backend, making the backends interchangeable behind
    :func:`~repro.experiments.runner.run_sweep`.
    """

    #: Short name used by CLI ``--backend`` and reprs.
    name: str = "abstract"

    #: Shard indices (into the last map's input sequence) that were set
    #: aside instead of executed.  Only the socket backend's opt-in
    #: ``continue_past_quarantine`` mode ever populates this; the local
    #: backends execute every shard or raise, so it stays empty.
    quarantined_shards: tuple[int, ...] = ()

    #: Shard indices that exhausted a chunk's retry budget but executed
    #: successfully when the end-of-map auto-retry pass re-ran them one
    #: at a time (their results WERE yielded).  Socket backend only.
    healed_shards: tuple[int, ...] = ()

    @abstractmethod
    def imap(self, worker: Callable, shards: Sequence, chunksize: int = 1) -> Iterator:
        """Yield ``worker(shard)`` for each shard, in shard order.

        Results are yielded as soon as the ordered prefix completes, so
        callers can persist them incrementally; ``chunksize`` groups
        contiguous shards onto one worker to keep their shared
        process-local caches together.
        """

    def map(self, worker: Callable, shards: Sequence, chunksize: int = 1) -> list:
        """Like :meth:`imap` but materialized."""
        return list(self.imap(worker, shards, chunksize=chunksize))

    def imap_unordered(
        self, worker: Callable, shards: Sequence, chunksize: int = 1
    ) -> Iterator[tuple[int, object]]:
        """Yield ``(shard_index, result)`` pairs as completions arrive.

        Parallel backends override this to surface results in completion
        order, so a streaming consumer (the shard store) can make every
        finished shard durable immediately instead of waiting for the
        ordered prefix; the base implementation simply numbers
        :meth:`imap`.
        """
        for index, result in enumerate(self.imap(worker, shards, chunksize=chunksize)):
            yield index, result

    def worker_hint(self) -> int:
        """Expected concurrent workers (callers size chunks from this)."""
        return 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class SerialBackend(ExecutionBackend):
    """Run every shard in the calling process (bit-identical reference)."""

    name = "serial"

    def imap(self, worker: Callable, shards: Sequence, chunksize: int = 1) -> Iterator:
        for shard in shards:
            yield worker(shard)


def _run_chunk(worker: Callable, chunk: list) -> list:
    """Pool task: execute one chunk of shards (module-level, picklable)."""
    return [worker(shard) for shard in chunk]


class ProcessPoolBackend(ExecutionBackend):
    """Fan shards out over a local ``ProcessPoolExecutor``.

    This is the pre-refactor ``jobs > 1`` behaviour, now one strategy
    among several.  ``pool.map`` already yields lazily in submission
    order, so streaming consumers see completed cells as the ordered
    prefix finishes; :meth:`imap_unordered` surfaces them in completion
    order instead.
    """

    name = "process"

    def __init__(
        self,
        jobs: int | None = 0,
        initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        #: Optional per-worker initializer (module-level, picklable), run
        #: once when a pool worker starts.  The shared-cache tier uses it
        #: to attach workers to the parent's published overlay block
        #: (:func:`repro.analysis.shared_memo.attach_worker`); fork-start
        #: children detect the inherited block and return immediately.
        self.initializer = initializer
        self.initargs = tuple(initargs)

    def _pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=self.initializer,
            initargs=self.initargs,
        )

    def worker_hint(self) -> int:
        return self.jobs

    def imap(self, worker: Callable, shards: Sequence, chunksize: int = 1) -> Iterator:
        if len(shards) <= 1 or self.jobs <= 1:
            yield from SerialBackend().imap(worker, shards, chunksize)
            return
        pool = self._pool()
        try:
            yield from pool.map(worker, shards, chunksize=max(1, chunksize))
        finally:
            # A consumer that stops early (e.g. the shard store hit a
            # disk error) must not wait for the rest of the grid:
            # cancel everything not yet running before joining.
            pool.shutdown(wait=True, cancel_futures=True)

    def imap_unordered(
        self, worker: Callable, shards: Sequence, chunksize: int = 1
    ) -> Iterator[tuple[int, object]]:
        if len(shards) <= 1 or self.jobs <= 1:
            yield from ExecutionBackend.imap_unordered(self, worker, shards, chunksize)
            return
        chunksize = max(1, int(chunksize))
        chunks = _chunked(shards, chunksize)
        pool = self._pool()
        try:
            futures = {
                pool.submit(_run_chunk, worker, chunk): index
                for index, chunk in enumerate(chunks)
            }
            for future in as_completed(futures):
                base = futures[future] * chunksize
                for offset, result in enumerate(future.result()):
                    yield base + offset, result
        finally:
            pool.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
# Socket backend.  The framing lives in :mod:`repro.experiments.wire`;
# the legacy helpers below are the raw pickle codec kept for the
# ``--wire pickle`` escape hatch and its tests.
# ----------------------------------------------------------------------

_LENGTH = struct.Struct(">Q")


def _send_msg(sock: socket.socket, message: tuple) -> None:
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes, or ``None`` on a clean EOF at byte 0."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count:
                return None
            raise ConnectionError("socket closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_msg(sock: socket.socket) -> tuple | None:
    """Read one length-prefixed frame, or ``None`` on clean EOF."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME:
        raise StreamDesync(
            f"pickle frame announces {length} bytes (> {MAX_FRAME}); "
            "stream is desynchronized or hostile"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ConnectionError("socket closed between header and payload")
    return pickle.loads(payload)


def _tokens_match(presented, expected: str) -> bool:
    """Timing-safe join-token comparison — never ``==`` on the secret.

    A plain ``==`` short-circuits on the first differing character, so
    an attacker who can time the handshake learns the token prefix byte
    by byte; :func:`hmac.compare_digest` compares in constant time.
    ``presented`` came off the wire and may be anything.
    """
    if not isinstance(presented, str):
        return False
    return hmac.compare_digest(
        presented.encode("utf-8"), expected.encode("utf-8")
    )


def parse_address(address: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (IPv4/hostname) into a connectable tuple."""
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return (host or "127.0.0.1", int(port))


class WorkerRejectedError(RuntimeError):
    """The server refused this worker's join handshake (bad auth token)."""


def _worker_session(
    host: str,
    port: int,
    auth_token: str | None = None,
    wire: str = "v1",
    budget: list | None = None,
    drain: threading.Event | None = None,
) -> tuple[int, bool]:
    """Serve one server connection until it shuts the worker down.

    Returns ``(chunks executed, session ended cleanly)``.  Chunks done
    before the server drops the connection still count — the caller's
    idle detection must not mistake a hard-killed server for a worker
    that never did anything.  Raises :class:`WorkerRejectedError` when
    the server refuses the handshake: retrying cannot help, so the
    caller must not linger.

    While a chunk executes, a companion thread streams ``heartbeat``
    frames at the cadence the server's ``welcome`` frame requested, so
    the server can tell "still computing" from "hard-killed" and
    requeue only the latter.

    Per-frame recovery (``--wire v1``): a frame this worker cannot use
    answers with ``badframe`` (the server resends the task); a ``nack``
    from the server resends this worker's cached last reply.  ``budget``
    is a mutable ``[chunks remaining]`` cell shared with the caller —
    when it reaches zero the worker sends a ``leave`` goodbye *before*
    its final result, so the server deterministically stops dispatching
    to it.  ``drain`` is an event (set by SIGTERM) that makes an idle
    worker send ``leave`` and wait for the server's ``shutdown``.
    """
    executed = 0
    session = make_session(wire, auth_token)
    try:
        with socket.create_connection((host, port)) as sock:
            # Heartbeats interleave with result frames on one socket;
            # the lock keeps each frame atomic.
            send_lock = threading.Lock()

            def send(message: tuple) -> None:
                with send_lock:
                    session.send(sock, message)

            send(("hello", os.getpid(), auth_token))
            busy = threading.Event()
            stop = threading.Event()
            interval = [DEFAULT_HEARTBEAT_TIMEOUT / 4]

            def beat() -> None:
                while not stop.is_set():
                    if not busy.wait(timeout=0.2):
                        continue
                    try:
                        send(("heartbeat",))
                    except OSError:
                        return
                    stop.wait(interval[0])

            heartbeats = threading.Thread(target=beat, daemon=True)
            heartbeats.start()
            if drain is not None:

                def goodbye_on_drain() -> None:
                    # SIGTERM sets ``drain`` from the signal handler; a
                    # thread sends the goodbye so the handler itself
                    # never touches the socket (it could interrupt the
                    # main thread while it holds ``send_lock``).
                    while not drain.wait(timeout=0.2):
                        if stop.is_set():
                            return
                    if stop.is_set():
                        return
                    try:
                        send(("leave",))
                    except OSError:
                        pass

                threading.Thread(target=goodbye_on_drain, daemon=True).start()
            #: Last result/error frame sent, cached for ``nack`` resends.
            last_reply: list = [None]
            left = False
            try:
                while True:
                    try:
                        message = session.recv(sock)
                    except FrameRejected as error:
                        # One unusable frame on an aligned stream: ask
                        # the server to resend instead of dying (the old
                        # codec killed the session here, feeding every
                        # replacement worker the same poison frame).
                        send(("badframe", str(error)))
                        continue
                    if message is None or message[0] == "shutdown":
                        break
                    if message[0] == "welcome":
                        # The server dictates the heartbeat cadence so one
                        # knob (its timeout) governs both sides, and hands
                        # down the campaign id + MAC mode for this map.
                        if len(message) > 1:
                            interval[0] = max(0.05, float(message[1]))
                        if len(message) > 2 and message[2]:
                            session.campaign = str(message[2])
                        session.secure(str(message[3]) if len(message) > 3 else None)
                        continue
                    if message[0] == "reject":
                        reason = message[1] if len(message) > 1 else "rejected by server"
                        raise WorkerRejectedError(str(reason))
                    if message[0] == "nack":
                        # The server could not use our last frame (line
                        # corruption): resend the cached reply verbatim.
                        if last_reply[0] is not None:
                            send(last_reply[0])
                        continue
                    try:
                        kind, index, worker, chunk = message
                        if kind != "task":
                            raise ValueError(f"unexpected frame kind {kind!r}")
                    except (ValueError, TypeError):
                        # A frame of the wrong shape (protocol skew) gets
                        # the same per-frame treatment as a corrupt one.
                        send(
                            (
                                "badframe",
                                "malformed task frame (protocol skew between "
                                f"server and worker?):\n{traceback.format_exc()}",
                            )
                        )
                        continue
                    busy.set()
                    try:
                        results = [worker(shard) for shard in chunk]
                    except Exception:
                        busy.clear()
                        last_reply[0] = ("error", index, traceback.format_exc())
                        send(last_reply[0])
                    else:
                        busy.clear()
                        if budget is not None and not left:
                            budget[0] -= 1
                            if budget[0] <= 0:
                                # Goodbye *before* the final result: the
                                # server sees the leave first and will not
                                # dispatch past this chunk.
                                left = True
                                send(("leave",))
                        last_reply[0] = ("result", index, results)
                        try:
                            send(last_reply[0])
                        except TypeError:
                            # Result not expressible on this wire format:
                            # a real task failure, not a transport one.
                            last_reply[0] = (
                                "error",
                                index,
                                "result not encodable on this wire format:\n"
                                + traceback.format_exc(),
                            )
                            send(last_reply[0])
                        executed += 1
            finally:
                stop.set()
                busy.clear()
    except OSError:
        return executed, False
    return executed, True


def _reconnect_backoff(
    base: float = _BACKOFF_BASE,
    cap: float = _BACKOFF_CAP,
    rng: Callable[[], float] = random.random,
) -> Iterator[float]:
    """Jittered exponential backoff delays for the linger reconnect loop.

    A dead server with a large fleet must not be hammered in lockstep:
    each failed attempt doubles the delay up to ``cap``, and every delay
    is jittered by ±50% so the fleet's retries spread out instead of
    arriving as synchronized thundering herds.  The caller restarts the
    generator after any successful session (the next map of the same
    exhibit usually binds within moments).
    """
    delay = base
    while True:
        yield delay * (0.5 + rng())
        delay = min(delay * 2.0, cap)


def run_worker(
    address: str,
    linger: float = 0.0,
    auth_token: str | None = None,
    wire: str = "v1",
    max_chunks: int | None = None,
) -> tuple[int, bool]:
    """Socket-backend worker loop: ``python -m repro worker --connect ...``.

    Connects to a :class:`SocketBackend` server, then pulls ``task``
    frames (a chunk of shards plus the module-level worker function,
    shipped by reference), executes them, and streams ``result`` frames
    back until the server sends ``shutdown``.  Exceptions inside a task
    are reported as ``error`` frames with the formatted traceback and do
    not kill the worker.  Returns ``(chunks executed, reached)`` where
    ``reached`` records whether any session drained cleanly — the CLI
    uses it to tell "server unreachable" (alarm) from "queue was
    legitimately empty" (healthy) when the count is zero.

    ``wire`` selects the frame codec (``v1`` — authenticated
    ``repro-wire-v1`` frames, the default — or the legacy ``pickle``
    codec); it must match the server's ``--wire``.

    ``auth_token`` is presented in the join handshake; a server that
    requires a different secret answers with a ``reject`` frame, which
    raises :class:`WorkerRejectedError` immediately (no linger retries —
    a wrong secret will be wrong next time too).  The CLI reads the
    token from ``--auth-token`` or the ``REPRO_AUTH_TOKEN`` environment
    variable, which is also how a server passes the secret to the
    workers it spawns itself.

    ``linger`` keeps the worker alive across *servers*: multi-sweep
    exhibits (ext-patterns, headline, ``all``) run one socket map per
    sweep, each draining its workers with ``shutdown``, so after a
    session ends the worker keeps retrying the address for ``linger``
    seconds and joins the next map that binds it.  ``0`` exits after the
    first session (or immediately if no server is listening).  Failed
    reconnect attempts back off exponentially with jitter (capped at
    ``_BACKOFF_CAP`` seconds) so a dead server is not hammered.

    ``max_chunks`` makes the worker *elastic*: after executing that many
    chunks it sends a ``leave`` goodbye and exits cleanly, with no
    retry-budget charge on the server (scale-down, spot-instance
    reclaim, rolling restarts).  SIGTERM triggers the same drain for an
    idle or busy worker (at most the in-flight chunk completes first).
    """
    host, port = parse_address(address)
    executed = 0
    reached = False
    budget = None
    if max_chunks is not None:
        max_chunks = int(max_chunks)
        if max_chunks <= 0:
            raise ValueError("max_chunks must be positive (or None)")
        budget = [max_chunks]
    drain = threading.Event()
    try:
        # Only the main thread may install handlers; tests drive
        # run_worker from threads, where SIGTERM drain simply stays off.
        previous_handler = signal.signal(signal.SIGTERM, lambda *_: drain.set())
    except ValueError:
        previous_handler = None
    try:
        deadline = time.monotonic() + max(0.0, linger)
        backoff = _reconnect_backoff()
        while True:
            chunks, clean = _worker_session(
                host, port, auth_token=auth_token, wire=wire,
                budget=budget, drain=drain,
            )
            executed += chunks
            reached = reached or clean
            if budget is not None and budget[0] <= 0:
                return executed, reached  # drained at --max-chunks
            if drain.is_set():
                return executed, reached  # SIGTERM drain: clean exit
            if chunks or clean:
                # A session that served chunks or drained cleanly
                # refreshes the window and resets the backoff: the next
                # map of the same exhibit usually starts within moments.
                # A server that was never reachable does not — the
                # linger clock keeps running and the delays keep growing.
                deadline = time.monotonic() + max(0.0, linger)
                backoff = _reconnect_backoff()
            now = time.monotonic()
            if now >= deadline:
                return executed, reached
            time.sleep(min(next(backoff), max(0.05, deadline - now)))
            if drain.is_set():
                return executed, reached
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)


class _RemoteTaskError(RuntimeError):
    """A task raised on a worker; carries the remote traceback."""


#: Placeholder a quarantined chunk leaves in the completion map (continue
#: mode): the consume loop recognizes it, records the chunk's shard
#: indices, and moves on without yielding results for them.
_QUARANTINED = object()

#: Placeholder a *split* chunk leaves in the completion map (continue
#: mode with ``auto_retry``): the chunk's shards were re-queued as
#: single-shard chunks for the end-of-map auto-retry pass, so the
#: consume loop skips the placeholder — the results (or one-shard
#: quarantines) arrive under the new chunk indices.
_SPLIT = object()


class SocketBackend(ExecutionBackend):
    """Ship shards to worker processes over TCP.

    Args:
        bind: ``HOST:PORT`` to listen on.  Port ``0`` picks an ephemeral
            port (the resolved address is available as ``self.address``
            while a map is running).  Bind a routable host to accept
            workers from other machines.
        spawn_workers: local worker processes to launch per map call
            (each runs ``python -m repro worker --connect``); ``0``
            relies entirely on externally-started workers.
        timeout: overall seconds to wait for results before failing
            (``None`` waits forever — the distributed default, matching
            the artifact's "come back when the machines are done").
        auth_token: shared secret a worker must present in its ``hello``
            frame; ``None`` accepts every worker.  Spawned local workers
            inherit the secret through the ``REPRO_AUTH_TOKEN``
            environment variable (never the command line, which ``ps``
            would show); remote workers pass ``--auth-token`` or set the
            same variable.
        workers_expected: hold every task until this many workers have
            joined (the start barrier for paper-scale fleets); ``0``
            dispatches to the first worker that shows up.
        heartbeat_timeout: seconds of silence from a worker that owns a
            chunk before it is presumed dead and its chunk requeued.
            Workers are told to heartbeat at a quarter of this, so a
            healthy-but-slow chunk never trips it.  ``None`` disables
            the deadline (the pre-hardening behaviour: wait forever).
        max_chunk_retries: worker deaths one chunk may survive before it
            is quarantined as a poison shard and the map aborts, instead
            of crash-looping every worker that joins.
        continue_past_quarantine: opt-in quarantine semantics — a chunk
            that exhausts its retry budget is *set aside* instead of
            aborting the map, the rest of the grid completes, and the
            skipped shard indices are published on
            :attr:`quarantined_shards` after the map for a targeted
            re-run.  Bit-identical for every shard that does execute.
        status_port: serve a live ``repro-status-v1`` JSON snapshot of
            the running map on this TCP port (bound on the same host as
            the work port; ``0`` picks an ephemeral port, resolved as
            :attr:`status_address` while a map runs); ``None`` disables
            the status server entirely.
        wire: frame codec on the work port — ``"v1"`` (authenticated
            ``repro-wire-v1`` frames, the default) or ``"pickle"`` (the
            legacy unauthenticated codec, for old trusted fleets only).
            Workers must be started with the matching ``--wire``.
        auto_retry: in continue-past-quarantine mode, re-run each
            quarantined multi-shard chunk at one-shard granularity at
            the end of the map, so :attr:`quarantined_shards` shrinks to
            exactly the poison shards and the collateral shards land on
            :attr:`healed_shards` (with their results yielded normally).
            On by default; only meaningful with
            ``continue_past_quarantine``.
        max_buffered_chunks: backpressure bound — pause dispatching new
            chunks while this many completed chunks sit unconsumed by a
            slow consumer (a stalled store disk, a saturated pipe).
            In-flight chunks are always received, so the bound can be
            briefly exceeded and no deadlock is possible.  ``None`` (the
            default) buffers without bound.
    """

    name = "socket"

    def __init__(
        self,
        bind: str = "127.0.0.1:0",
        spawn_workers: int = 1,
        timeout: float | None = None,
        auth_token: str | None = None,
        workers_expected: int = 0,
        heartbeat_timeout: float | None = DEFAULT_HEARTBEAT_TIMEOUT,
        max_chunk_retries: int = DEFAULT_CHUNK_RETRIES,
        continue_past_quarantine: bool = False,
        status_port: int | None = None,
        wire: str = "v1",
        auto_retry: bool = True,
        max_buffered_chunks: int | None = None,
    ) -> None:
        self.bind_host, self.bind_port = parse_address(bind)
        if spawn_workers < 0:
            raise ValueError("spawn_workers must be >= 0")
        if workers_expected < 0:
            raise ValueError("workers_expected must be >= 0")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive (or None)")
        if max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be >= 0")
        if status_port is not None and not 0 <= status_port <= 65535:
            raise ValueError("status_port must be a TCP port (or None)")
        if wire not in WIRE_CHOICES:
            raise ValueError(f"wire must be one of {WIRE_CHOICES}, got {wire!r}")
        if max_buffered_chunks is not None and max_buffered_chunks < 1:
            raise ValueError("max_buffered_chunks must be >= 1 (or None)")
        self.spawn_workers = spawn_workers
        self.timeout = timeout
        self.auth_token = auth_token
        self.workers_expected = workers_expected
        self.heartbeat_timeout = heartbeat_timeout
        self.max_chunk_retries = max_chunk_retries
        self.continue_past_quarantine = continue_past_quarantine
        self.status_port = status_port
        self.wire = wire
        self.auto_retry = auto_retry
        self.max_buffered_chunks = max_buffered_chunks
        #: Resolved ``(host, port)`` of the live listener (set per map).
        self.address: tuple[str, int] | None = None
        #: Resolved ``(host, port)`` of the live status server (per map).
        self.status_address: tuple[str, int] | None = None
        #: Shard indices the last map quarantined (continue mode only).
        self.quarantined_shards: tuple[int, ...] = ()
        #: Shard indices the auto-retry pass healed (continue mode only).
        self.healed_shards: tuple[int, ...] = ()
        #: Optional driver-supplied workload fields (e.g. the fleet
        #: runner's chip/shard counts) echoed into status snapshots.
        self.campaign_info: dict | None = None

    def _heartbeat_interval(self) -> float:
        """Cadence workers are told to beat at (quarter of the deadline)."""
        if self.heartbeat_timeout is None:
            return DEFAULT_HEARTBEAT_TIMEOUT / 4
        return max(0.05, self.heartbeat_timeout / 4)

    def worker_hint(self) -> int:
        """Expected workers: exact for spawn-only, padded when remote-capable.

        A loopback bind with spawned workers is effectively a local pool
        of known size.  A routable bind (or a remote-only server,
        ``spawn_workers=0``) can't know how many ``--connect`` workers
        will join; a generous over-estimate keeps chunks small enough
        that late joiners still find work and a dropped worker requeues
        little — it must in particular exceed typical error-count block
        counts (~4), or :func:`~repro.experiments.runner._sweep_chunksize`
        would never split blocks and fleets larger than the block count
        would starve.
        """
        if self.spawn_workers and self.bind_host in ("127.0.0.1", "localhost", "::1"):
            return self.spawn_workers
        return max(self.spawn_workers, 16)

    # -- worker process management ------------------------------------

    def _spawn_local_workers(self, port: int) -> list[subprocess.Popen]:
        """Launch local workers pointed at the live listener.

        A worker must unpickle whatever module-level function the parent
        maps — :mod:`repro` itself however it was found (installed,
        ``PYTHONPATH=src``, a pytest path hack), but also caller-defined
        workers — so the child inherits the parent's full ``sys.path``
        via ``PYTHONPATH``, matching the visibility a forked pool worker
        would have.  (Remote workers are started by hand and only need
        :mod:`repro` importable.)
        """
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(entry for entry in sys.path if entry)
        if self.auth_token is not None:
            # The environment, not the command line: `ps` shows argv to
            # every user on the box, while the child's environment stays
            # private to it.
            env[AUTH_TOKEN_ENV] = self.auth_token
        command = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            f"127.0.0.1:{port}",
            # Spawned workers are per-map: exit with the session instead
            # of lingering for a next server like hand-started ones, and
            # don't alarm when siblings drained the queue first.
            "--linger",
            "0",
            "--spawned",
            # Both sides of the wire must speak the same codec.
            "--wire",
            self.wire,
        ]
        return [
            subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL)
            for _ in range(self.spawn_workers)
        ]

    # -- server ---------------------------------------------------------

    def imap(self, worker: Callable, shards: Sequence, chunksize: int = 1) -> Iterator:
        for _, result in self._execute(worker, shards, chunksize, ordered=True):
            yield result

    def imap_unordered(
        self, worker: Callable, shards: Sequence, chunksize: int = 1
    ) -> Iterator[tuple[int, object]]:
        yield from self._execute(worker, shards, chunksize, ordered=False)

    def _execute(
        self, worker: Callable, shards: Sequence, chunksize: int, ordered: bool
    ) -> Iterator[tuple[int, object]]:
        """Serve the map; yield ``(shard_index, result)`` pairs.

        ``ordered`` yields the shard-order prefix as it completes;
        unordered yields whole chunks in completion order, which lets
        streaming consumers persist every finished shard immediately.
        (``continue_past_quarantine`` requires the unordered path: a
        quarantined chunk is never yielded — its shard indices land on
        :attr:`quarantined_shards` instead — which only
        :meth:`imap_unordered`'s explicit indices can represent.  An
        ordered consumer that hits a quarantine raises rather than
        silently misaligning every later result.)
        """
        self.quarantined_shards = ()
        self.healed_shards = ()
        if not len(shards):
            return
        chunksize = max(1, int(chunksize))
        #: One id per map so a frame from a stale server/worker pairing
        #: (a worker that lingered across maps, a chaos replay) is
        #: rejected per-frame instead of corrupting this campaign.
        campaign = secrets.token_hex(8)
        #: Shard indices per chunk.  Chunk identity is *this list*, not
        #: ``base + offset``: the auto-retry pass appends single-shard
        #: chunks past the original tail when it splits a poison chunk.
        chunk_shards: list[list[int]] = [
            list(range(i, min(i + chunksize, len(shards))))
            for i in range(0, len(shards), chunksize)
        ]
        original_total = len(chunk_shards)
        pending: deque[int] = deque(range(original_total))
        #: Split singles parked until the main grid drains (end-of-map
        #: auto-retry): re-running them early would just feed the same
        #: healthy fleet into the poison shard over and over.
        deferred: deque[int] = deque()
        completed: dict[int, list] = {}
        #: Worker deaths charged against each chunk's retry budget.
        attempts: dict[int, int] = {}
        #: Chunk indices set aside in continue-past-quarantine mode.
        quarantined: list[int] = []
        #: Shard indices healed by the auto-retry pass (consumer-owned).
        healed: list[int] = []
        #: Live per-worker registry for the status snapshot: handler id
        #: -> {pid, last_seen, chunk, leaving}; mutated under ``condition``.
        fleet: dict[int, dict] = {}
        state = {
            "error": None,
            "handlers": 0,
            "done": 0,
            "joined": 0,
            "left": 0,
            "retries": 0,
            "in_flight": 0,
            # Chunks that must complete for the map to finish; grows
            # when a poison chunk is split into auto-retry singles.
            "expected": original_total,
        }
        condition = threading.Condition()
        done = threading.Event()
        #: Throughput ring buffer for status-v2 trend rendering; sampled
        #: on every chunk completion under ``condition``.
        history = ThroughputHistory()

        def dispatchable() -> bool:
            """Under ``condition``: is there a chunk ready to hand out?

            Promotes the deferred auto-retry singles once the main grid
            has fully drained (nothing pending, nothing in flight) —
            the "end of map" in end-of-map auto-retry.
            """
            if pending:
                return True
            if (
                deferred
                and state["in_flight"] == 0
                and state["done"] >= state["expected"] - len(deferred)
            ):
                pending.extend(deferred)
                deferred.clear()
                return True
            return False

        def backpressured() -> bool:
            """Under ``condition``: is the completed-chunk buffer full?"""
            return (
                self.max_buffered_chunks is not None
                and len(completed) >= self.max_buffered_chunks
            )

        def handle(conn: socket.socket) -> None:
            """Serve one worker connection until the whole map completes.

            An idle handler (queue momentarily empty) must *wait*, not
            dismiss its worker: another worker may still fail mid-chunk
            and requeue work that only this one can pick up.  While it
            waits it polls the socket, because an idle worker may still
            speak — a ``leave`` goodbye (SIGTERM drain) that must turn
            into a prompt ``shutdown``, not a task.
            """
            current: int | None = None
            me: dict | None = None
            session = make_session(self.wire, self.auth_token)

            def poll_goodbye() -> str | None:
                """Drain frames an *idle* worker sent; ``"leave"``/``"eof"``
                end the session, anything else (a straggler heartbeat)
                is ignorable."""
                while select.select([conn], [], [], 0)[0]:
                    conn.settimeout(5)
                    try:
                        early = session.recv(conn)
                    except FrameRejected:
                        continue
                    finally:
                        conn.settimeout(self.heartbeat_timeout)
                    if early is None:
                        return "eof"
                    if early[0] == "leave":
                        return "leave"
                return None

            try:
                with conn:
                    # A connection that never speaks (port scan, health
                    # probe) must not park this handler forever: while
                    # it counts in state["handlers"], the all-workers-
                    # died fail-fast is suppressed.  Bound the hello.
                    conn.settimeout(5)
                    hello = session.recv(conn)
                    if not hello or hello[0] != "hello":
                        return
                    token = hello[2] if len(hello) > 2 else None
                    if self.auth_token is not None and not _tokens_match(
                        token, self.auth_token
                    ):
                        # Reject *before* the connection is trusted with
                        # any task frame; the worker surfaces the reason
                        # and exits instead of linger-retrying.
                        try:
                            session.send(conn, ("reject", "bad or missing auth token"))
                        except OSError:
                            pass
                        return
                    # The welcome is the last handshake frame (fixed MAC
                    # key); it hands the worker the campaign id and the
                    # MAC mode both sides use from here on.
                    session.send(
                        conn,
                        (
                            "welcome",
                            self._heartbeat_interval(),
                            campaign,
                            session.mac_mode,
                        ),
                    )
                    session.campaign = campaign
                    session.secure()
                    # While a chunk is in flight every frame — heartbeat
                    # or reply — must arrive within the deadline, or the
                    # worker is presumed dead and the chunk requeued.
                    conn.settimeout(self.heartbeat_timeout)
                    me = {
                        "pid": hello[1],
                        "last_seen": time.monotonic(),
                        "chunk": None,
                        "leaving": False,
                    }
                    with condition:
                        state["joined"] += 1
                        fleet[id(me)] = me
                        condition.notify_all()
                    goodbye: str | None = None
                    while True:
                        # -- wait for a dispatchable chunk ---------------
                        current = None
                        while current is None:
                            goodbye = poll_goodbye()
                            if goodbye:
                                break
                            with condition:
                                if (
                                    done.is_set()  # consumer abandoned the map
                                    or state["error"] is not None
                                    or state["done"] >= state["expected"]
                                ):
                                    break
                                if (
                                    state["joined"] >= self.workers_expected
                                    and not backpressured()
                                    and dispatchable()
                                ):
                                    current = pending.popleft()
                                    state["in_flight"] += 1
                                    me["chunk"] = current
                                    me["last_seen"] = time.monotonic()
                                    continue
                                condition.wait(0.1)
                        if current is None:
                            break  # map over, or the worker said goodbye
                        # -- dispatch, then pump frames until the reply --
                        task = (
                            "task",
                            current,
                            worker,
                            [shards[i] for i in chunk_shards[current]],
                        )
                        session.send(conn, task)
                        resends = nacks = 0
                        while True:
                            try:
                                reply = session.recv(conn)
                            except FrameRejected:
                                # Corrupt-but-aligned frame from the
                                # worker: ask it to resend its reply
                                # instead of declaring it dead.
                                nacks += 1
                                if nacks > _TRANSPORT_RETRIES:
                                    raise ConnectionError(
                                        "worker kept sending unusable frames; "
                                        "dropping the connection"
                                    )
                                session.send(conn, ("nack",))
                                continue
                            if reply is None:
                                raise ConnectionError("worker hung up mid-task")
                            with condition:
                                me["last_seen"] = time.monotonic()
                            if reply[0] == "heartbeat":
                                continue
                            if reply[0] == "leave":
                                # Drain goodbye ahead of the final result
                                # (--max-chunks): take the result, then
                                # stop dispatching to this worker.
                                goodbye = "leave"
                                continue
                            if reply[0] == "badframe":
                                # The worker could not use our task frame;
                                # resend it in place (transport retry, no
                                # retry-budget charge).
                                resends += 1
                                if resends > _TRANSPORT_RETRIES:
                                    detail = reply[1] if len(reply) > 1 else "unknown"
                                    raise ConnectionError(
                                        "worker could not use the task frame "
                                        f"after {resends} sends: {detail}"
                                    )
                                session.send(conn, task)
                                continue
                            if reply[0] in ("result", "error") and reply[1] != current:
                                # Stale resend (nack crossfire duplicate);
                                # the reply for *this* chunk still follows.
                                continue
                            break
                        kind, index, payload = reply
                        with condition:
                            if kind == "error":
                                state["error"] = _RemoteTaskError(
                                    f"shard chunk {index} failed on a socket worker:\n{payload}"
                                )
                            else:
                                completed[index] = payload
                                state["done"] += 1
                                history.record(
                                    time.monotonic() - started_at, state["done"]
                                )
                            state["in_flight"] -= 1
                            current = None
                            me["chunk"] = None
                            condition.notify_all()
                        if goodbye:
                            break
                    if goodbye == "leave":
                        with condition:
                            me["leaving"] = True
                            state["left"] += 1
                            condition.notify_all()
                    try:
                        session.send(conn, ("shutdown",))
                    except OSError:
                        pass
            except Exception:
                # Any handler failure — a dropped connection, a missed
                # heartbeat deadline, but also a malformed or unpicklable
                # reply frame — must give the in-flight chunk back to
                # surviving workers, or the map would wait forever on a
                # chunk nobody owns.  Each requeue spends retry budget:
                # a chunk that keeps killing workers is quarantined
                # instead of crash-looping the whole fleet — aborting the
                # map with its identity by default, or (opt-in) setting
                # just that chunk aside and finishing the grid.
                with condition:
                    if current is not None:
                        state["in_flight"] -= 1
                        attempts[current] = attempts.get(current, 0) + 1
                        state["retries"] += 1
                        if attempts[current] > self.max_chunk_retries:
                            if self.continue_past_quarantine:
                                if self.auto_retry and len(chunk_shards[current]) > 1:
                                    # Auto-retry: don't quarantine the
                                    # whole chunk — park each of its
                                    # shards as a single-shard chunk for
                                    # the end-of-map pass, so only the
                                    # truly poison shard(s) stay
                                    # quarantined and the rest heal.
                                    for shard_index in chunk_shards[current]:
                                        chunk_shards.append([shard_index])
                                        deferred.append(len(chunk_shards) - 1)
                                    state["expected"] += len(chunk_shards[current])
                                    completed[current] = _SPLIT
                                    state["done"] += 1
                                else:
                                    quarantined.append(current)
                                    completed[current] = _QUARANTINED
                                    state["done"] += 1
                            else:
                                state["error"] = RuntimeError(
                                    f"shard chunk {current} was lost by "
                                    f"{attempts[current]} worker(s) in a row; retry "
                                    f"budget ({self.max_chunk_retries}) exhausted — "
                                    "quarantining it as a poison chunk.  Investigate "
                                    "the shard (or raise max_chunk_retries, or run "
                                    "with --continue-past-quarantine); cells "
                                    "already streamed to a --resume store are safe."
                                )
                        else:
                            pending.appendleft(current)
                    condition.notify_all()
            finally:
                with condition:
                    state["handlers"] -= 1
                    if me is not None:
                        fleet.pop(id(me), None)
                    condition.notify_all()

        def accept_loop(listener: socket.socket) -> None:
            listener.settimeout(0.1)
            while not done.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                with condition:
                    state["handlers"] += 1
                threading.Thread(target=handle, args=(conn,), daemon=True).start()

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        acceptor = threading.Thread(target=accept_loop, args=(listener,), daemon=True)
        workers: list[subprocess.Popen] = []
        status_server = None
        started_at = time.monotonic()

        def snapshot() -> dict:
            """Assemble the repro-status-v2 JSON snapshot (status port)."""
            with condition:
                now = time.monotonic()
                extra = (
                    {"campaign": dict(self.campaign_info)}
                    if self.campaign_info
                    else {}
                )
                return {
                    **extra,
                    "format": STATUS_FORMAT,
                    "elapsed": round(now - started_at, 3),
                    "wire": self.wire,
                    "fleet": {
                        "size": len(fleet),
                        "joined_total": state["joined"],
                        "left_total": state["left"],
                        "expected": self.workers_expected,
                    },
                    "workers": [
                        {
                            "pid": info["pid"],
                            "heartbeat_age": round(now - info["last_seen"], 3),
                            "chunk": info["chunk"],
                        }
                        for info in fleet.values()
                    ],
                    "chunks": {
                        "total": state["expected"],
                        "done": state["done"],
                        "pending": len(pending),
                        "deferred": len(deferred),
                        "in_flight": state["in_flight"],
                    },
                    "retries": state["retries"],
                    "quarantined": sorted(quarantined),
                    "healed": len(healed),
                    "history": history.sample(),
                }

        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        served = 0
        next_chunk = 0
        quarantined_shards: list[int] = []
        # Everything after the socket exists runs under the finally: a
        # failure while binding, starting the acceptor, or spawning
        # workers must still release the port, stop the acceptor, and
        # reap whatever processes already launched — a leaked listener
        # would EADDRINUSE every later map on a fixed socket:// port.
        try:
            listener.bind((self.bind_host, self.bind_port))
            listener.listen()
            self.address = listener.getsockname()[:2]
            if self.status_port is not None:
                from repro.experiments.monitor import StatusServer

                status_server = StatusServer(
                    (self.bind_host, self.status_port), snapshot
                ).start()
                self.status_address = status_server.address
            acceptor.start()
            workers = self._spawn_local_workers(self.address[1])
            while True:
                with condition:
                    # ``expected`` can grow while we wait (auto-retry
                    # splits), so the exit check re-reads it under the
                    # lock every iteration.
                    if served >= state["expected"]:
                        break
                    while state["error"] is None and not (
                        next_chunk in completed if ordered else completed
                    ):
                        self._check_liveness(workers, state)
                        if deadline is not None and time.monotonic() > deadline:
                            barrier = (
                                f" (start barrier: {state['joined']} of "
                                f"{self.workers_expected} expected workers joined)"
                                if state["joined"] < self.workers_expected
                                else ""
                            )
                            raise TimeoutError(
                                "socket backend timed out with "
                                f"{state['expected'] - state['done']}"
                                f" chunk(s) outstanding{barrier}"
                            )
                        condition.wait(timeout=0.1)
                    if state["error"] is not None:
                        raise state["error"]
                    # Pop so the backend holds only the unconsumed
                    # chunks, not every chunk of the map.
                    if ordered:
                        index = next_chunk
                        results = completed.pop(index)
                        next_chunk += 1
                    else:
                        index, results = completed.popitem()
                    # The freed buffer slot lifts the backpressure gate.
                    condition.notify_all()
                served += 1
                shard_indices = chunk_shards[index]
                if (results is _QUARANTINED or results is _SPLIT) and ordered:
                    # imap()/map() callers pair results with shards
                    # positionally; silently skipping a chunk (or moving
                    # its shards to late out-of-order singles) would
                    # shift every later result onto the wrong shard.
                    # Only the index-carrying imap_unordered path can
                    # represent either.
                    raise RuntimeError(
                        f"shard chunk {index} was quarantined, but this map "
                        "was consumed in shard order (imap/map), which "
                        "cannot represent a hole; use imap_unordered with "
                        "continue_past_quarantine"
                    )
                if results is _SPLIT:
                    print(
                        f"repro: chunk {index} exhausted its retry budget "
                        f"({self.max_chunk_retries}); re-running its "
                        f"{len(shard_indices)} shard(s) one at a time at end "
                        "of map (auto-retry)",
                        file=sys.stderr,
                    )
                    continue
                if results is _QUARANTINED:
                    quarantined_shards.extend(shard_indices)
                    self.quarantined_shards = tuple(sorted(quarantined_shards))
                    print(
                        f"repro: chunk {index} quarantined after exhausting its "
                        f"retry budget ({self.max_chunk_retries}); continuing "
                        "with the rest of the grid (--continue-past-quarantine)",
                        file=sys.stderr,
                    )
                    continue
                if index >= original_total:
                    # A split single that completed: its shard was
                    # collateral damage of a poison chunk-mate, healed
                    # by the one-shard re-run.
                    healed.extend(shard_indices)
                    self.healed_shards = tuple(sorted(healed))
                for shard_index, result in zip(shard_indices, results):
                    yield shard_index, result
            if healed:
                print(
                    f"repro: auto-retry healed {len(healed)} of "
                    f"{len(healed) + len(quarantined_shards)} shard(s) from "
                    "quarantined chunks; poison set narrowed to "
                    f"{len(quarantined_shards)} shard(s)",
                    file=sys.stderr,
                )
        finally:
            # Reached on normal completion AND when the consumer closes
            # the generator early (e.g. the shard store hit a disk
            # error): handlers see the event, stop dispatching pending
            # chunks, and shut their workers down instead of burning
            # cluster CPU on an abandoned map.
            done.set()
            with condition:
                condition.notify_all()
            listener.close()
            if status_server is not None:
                status_server.close()
            if acceptor.ident is not None:  # never started if bind failed
                acceptor.join(timeout=5)
            for process in workers:
                try:
                    process.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover - cleanup
                    process.kill()
            self.address = None
            self.status_address = None

    def _check_liveness(self, workers, state) -> None:
        """Fail fast when every possible worker is gone but work remains.

        Only applies when the backend spawned its own workers: a server
        awaiting external ``--connect`` workers legitimately idles.
        """
        if not workers or state["handlers"] > 0:
            return
        if state["done"] >= state["expected"]:
            return
        if all(process.poll() is not None for process in workers):
            state["error"] = RuntimeError(
                "all spawned socket workers exited with "
                f"{state['expected'] - state['done']} chunk(s) outstanding "
                f"(exit codes: {[process.returncode for process in workers]})"
            )


class MapCancelled(RuntimeError):
    """Raised to a map's consumer when the map was cancelled mid-flight.

    Only the multi-map :class:`WorkServer` raises this: single-map
    backends have no cancel surface (the consumer just closes the
    iterator).  The service layer turns it into the ``cancelled`` job
    state instead of ``failed``.
    """


class WorkServer:
    """Persistent multi-campaign work server over one shared worker fleet.

    :class:`SocketBackend` serves exactly one map per listener: the
    listener binds when the map starts and closes when it drains, and a
    worker session lives inside that one map.  The campaign service
    needs the opposite shape — a fleet that outlives any single
    campaign, with *several* maps in flight at once — so this server
    binds once, keeps worker sessions alive across maps, and hands out
    chunks **round-robin across all open maps**: with two campaigns
    sharing two workers, each campaign advances at half speed instead of
    the second starving behind the first (the cross-campaign fairness
    headroom noted when one server hosts several maps).

    The wire protocol is unchanged ``repro-wire-v1``: the same
    ``python -m repro worker --connect`` processes serve either server
    kind.  Two mappings make multiplexing invisible to workers:

    * The campaign id in the ``welcome`` frame scopes the whole server
      lifetime (one fleet epoch), so every job submitted to one daemon
      rides the same HMAC-authenticated session scope — a frame replayed
      from another daemon (or a previous incarnation of this one) is
      rejected per-frame exactly as a cross-map replay is on
      :class:`SocketBackend`.
    * Task frames carry a server-global *ticket* where the single-map
      server put the chunk index.  Workers echo it back untouched, and
      the server routes the reply to the owning ``(map, chunk)`` — so
      interleaved chunks from concurrent campaigns never collide even
      when their chunk indices do.

    Per-map semantics match the single-map server where they apply:
    heartbeat deadlines requeue a dead worker's chunk, each requeue
    spends the chunk's retry budget, and budget exhaustion fails *that
    map only* (the service reports the job ``failed``; other jobs keep
    running).  The quarantine/auto-retry machinery stays single-map —
    a service job heals by resubmission over its resume store instead.

    Use :meth:`submit` to open a map and iterate the returned
    :class:`MapHandle`; or wrap the server in a
    :class:`SharedFleetBackend` facade per job so the ordinary drivers
    (``run_sweep``, ``fig10.run``, ``fleet.run``) consume it like any
    other backend.
    """

    def __init__(
        self,
        bind: str = "127.0.0.1:0",
        *,
        spawn_workers: int = 0,
        auth_token: str | None = None,
        workers_expected: int = 0,
        heartbeat_timeout: float | None = DEFAULT_HEARTBEAT_TIMEOUT,
        max_chunk_retries: int = DEFAULT_CHUNK_RETRIES,
        wire: str = "v1",
        status_port: int | None = None,
        worker_linger: float = 5.0,
    ) -> None:
        self.bind_host, self.bind_port = parse_address(bind)
        if spawn_workers < 0:
            raise ValueError("spawn_workers must be >= 0")
        if workers_expected < 0:
            raise ValueError("workers_expected must be >= 0")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive (or None)")
        if max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be >= 0")
        if wire not in WIRE_CHOICES:
            raise ValueError(f"wire must be one of {WIRE_CHOICES}, got {wire!r}")
        if status_port is not None and not 0 <= status_port <= 65535:
            raise ValueError("status_port must be a TCP port (or None)")
        self.spawn_workers = spawn_workers
        self.auth_token = auth_token
        self.workers_expected = workers_expected
        self.heartbeat_timeout = heartbeat_timeout
        self.max_chunk_retries = max_chunk_retries
        self.wire = wire
        self.status_port = status_port
        self.worker_linger = worker_linger
        #: Resolved ``(host, port)`` of the live work listener.
        self.address: tuple[str, int] | None = None
        #: Resolved ``(host, port)`` of the live status server (if any).
        self.status_address: tuple[str, int] | None = None
        #: One fleet epoch: every worker session and every frame of
        #: every job submitted to this server is scoped to this id.
        self._campaign = secrets.token_hex(8)
        self._condition = threading.Condition()
        self._closed = threading.Event()
        self._maps: dict[int, dict] = {}
        self._rotation: deque[int] = deque()
        self._tasks: dict[int, tuple[int, int]] = {}
        self._next_map = 0
        self._next_ticket = 0
        self._fleet: dict[int, dict] = {}
        self._state = {
            "handlers": 0,
            "joined": 0,
            "left": 0,
            "retries": 0,
            "done": 0,
            "expected_total": 0,
            "opened": 0,
        }
        self._history = ThroughputHistory()
        self._started = time.monotonic()
        self._listener: socket.socket | None = None
        self._acceptor: threading.Thread | None = None
        self._status_server = None
        self._procs: list[subprocess.Popen] = []

    def _heartbeat_interval(self) -> float:
        if self.heartbeat_timeout is None:
            return DEFAULT_HEARTBEAT_TIMEOUT / 4
        return max(0.05, self.heartbeat_timeout / 4)

    def worker_hint(self) -> int:
        """Fleet-size estimate for chunk sizing (see SocketBackend)."""
        if self.spawn_workers and self.bind_host in ("127.0.0.1", "localhost", "::1"):
            return self.spawn_workers
        return max(self.spawn_workers, 16)

    # -- lifecycle ------------------------------------------------------

    def start(self) -> "WorkServer":
        """Bind the work port, start accepting, spawn the local fleet."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((self.bind_host, self.bind_port))
            listener.listen()
        except OSError:
            listener.close()
            raise
        self._listener = listener
        self.address = listener.getsockname()[:2]
        if self.status_port is not None:
            from repro.experiments.monitor import StatusServer

            self._status_server = StatusServer(
                (self.bind_host, self.status_port), self.snapshot
            ).start()
            self.status_address = self._status_server.address
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="repro-workserver-accept", daemon=True
        )
        self._acceptor.start()
        self._procs = self._spawn_local_workers(self.address[1])
        return self

    def _spawn_local_workers(self, port: int) -> list[subprocess.Popen]:
        """Launch the server's own workers (same contract as SocketBackend).

        Unlike per-map spawns these get a nonzero ``--linger``: the
        fleet is meant to outlive individual maps, so a worker that
        loses its connection (handler died, transient network wobble)
        retries the work port for a few seconds instead of exiting and
        shrinking the fleet permanently.
        """
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(entry for entry in sys.path if entry)
        if self.auth_token is not None:
            env[AUTH_TOKEN_ENV] = self.auth_token
        command = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            f"127.0.0.1:{port}",
            "--linger",
            str(self.worker_linger),
            "--spawned",
            "--wire",
            self.wire,
        ]
        return [
            subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL)
            for _ in range(self.spawn_workers)
        ]

    def close(self) -> None:
        """Stop accepting, end worker sessions, reap spawned workers."""
        self._closed.set()
        with self._condition:
            self._condition.notify_all()
        if self._listener is not None:
            self._listener.close()
        if self._status_server is not None:
            self._status_server.close()
            self._status_server = None
        if self._acceptor is not None and self._acceptor.ident is not None:
            self._acceptor.join(timeout=5)
        for process in self._procs:
            # A lingering worker retries the (now closed) port for up to
            # worker_linger seconds before exiting cleanly; escalate
            # only past that.
            try:
                process.wait(timeout=self.worker_linger + 5)
            except subprocess.TimeoutExpired:  # pragma: no cover - cleanup
                process.kill()
        self._procs = []
        self.address = None
        self.status_address = None

    # -- map registry ---------------------------------------------------

    def submit(
        self, worker: Callable, shards: Sequence, chunksize: int = 1
    ) -> "MapHandle":
        """Open a map over the shared fleet; iterate the handle's results."""
        if self._closed.is_set():
            raise RuntimeError("work server is closed")
        chunksize = max(1, int(chunksize))
        chunk_shards = [
            list(range(i, min(i + chunksize, len(shards))))
            for i in range(0, len(shards), chunksize)
        ]
        with self._condition:
            map_id = self._next_map
            self._next_map += 1
            self._maps[map_id] = {
                "worker": worker,
                "shards": shards,
                "chunk_shards": chunk_shards,
                "pending": deque(range(len(chunk_shards))),
                "completed": {},
                "attempts": {},
                "done": 0,
                "served": 0,
                "expected": len(chunk_shards),
                "in_flight": 0,
                "error": None,
                "cancelled": False,
            }
            self._rotation.append(map_id)
            self._state["opened"] += 1
            self._state["expected_total"] += len(chunk_shards)
            self._condition.notify_all()
        return MapHandle(self, map_id)

    def _close_map(self, map_id: int) -> None:
        """Deregister a consumed/abandoned map; drop its late replies."""
        with self._condition:
            if self._maps.pop(map_id, None) is None:
                return
            try:
                self._rotation.remove(map_id)
            except ValueError:  # pragma: no cover - already rotated out
                pass
            for ticket, (owner, _) in list(self._tasks.items()):
                if owner == map_id:
                    del self._tasks[ticket]
            self._condition.notify_all()

    def _pick_locked(self) -> tuple[int, int] | None:
        """Under the condition: next ``(map_id, chunk_index)`` to dispatch.

        One full turn of the rotation per call, advancing the rotation
        past the map it serves — this *is* the cross-campaign fairness:
        each dispatch opportunity goes to the next open map that has
        work, so concurrent campaigns interleave chunk-by-chunk instead
        of draining in submission order.
        """
        for _ in range(len(self._rotation)):
            map_id = self._rotation[0]
            self._rotation.rotate(-1)
            entry = self._maps.get(map_id)
            if (
                entry is None
                or entry["cancelled"]
                or entry["error"] is not None
                or not entry["pending"]
            ):
                continue
            return map_id, entry["pending"].popleft()
        return None

    def _check_liveness_locked(self, entry: dict) -> None:
        """Fail open maps fast when the whole spawned fleet is dead."""
        if not self._procs or self._state["handlers"] > 0:
            return
        if entry["served"] >= entry["expected"]:
            return
        if all(process.poll() is not None for process in self._procs):
            codes = [process.returncode for process in self._procs]
            for open_map in self._maps.values():
                if open_map["error"] is None:
                    open_map["error"] = RuntimeError(
                        "all spawned fleet workers exited with maps "
                        f"outstanding (exit codes: {codes})"
                    )

    # -- status ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Assemble the repro-status-v2 fleet snapshot (status/HTTP)."""
        with self._condition:
            now = time.monotonic()
            return {
                "format": STATUS_FORMAT,
                "elapsed": round(now - self._started, 3),
                "wire": self.wire,
                "fleet": {
                    "size": len(self._fleet),
                    "joined_total": self._state["joined"],
                    "left_total": self._state["left"],
                    "expected": self.workers_expected,
                },
                "workers": [
                    {
                        "pid": info["pid"],
                        "heartbeat_age": round(now - info["last_seen"], 3),
                        "chunk": info["chunk"],
                    }
                    for info in self._fleet.values()
                ],
                "chunks": {
                    "total": self._state["expected_total"],
                    "done": self._state["done"],
                    "pending": sum(
                        len(entry["pending"]) for entry in self._maps.values()
                    ),
                    "deferred": 0,
                    "in_flight": sum(
                        entry["in_flight"] for entry in self._maps.values()
                    ),
                },
                "retries": self._state["retries"],
                "quarantined": [],
                "healed": 0,
                "maps": {
                    "active": len(self._maps),
                    "opened": self._state["opened"],
                },
                "history": self._history.sample(),
            }

    # -- worker sessions ------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        listener.settimeout(0.1)
        while not self._closed.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._condition:
                self._state["handlers"] += 1
            threading.Thread(target=self._handle, args=(conn,), daemon=True).start()

    def _handle(self, conn: socket.socket) -> None:
        """Serve one worker session across every map this server hosts.

        The body mirrors :meth:`SocketBackend._execute`'s handler — the
        same handshake, heartbeat deadline, badframe/nack recovery, and
        requeue-on-death bookkeeping — with two differences: an idle
        session *waits for the next map* instead of ending when one map
        drains, and dispatched tickets are resolved through
        ``self._tasks`` back to their owning map.
        """
        me: dict | None = None
        ticket: int | None = None
        session = make_session(self.wire, self.auth_token)

        def poll_goodbye() -> str | None:
            while select.select([conn], [], [], 0)[0]:
                conn.settimeout(5)
                try:
                    early = session.recv(conn)
                except FrameRejected:
                    continue
                finally:
                    conn.settimeout(self.heartbeat_timeout)
                if early is None:
                    return "eof"
                if early[0] == "leave":
                    return "leave"
            return None

        try:
            with conn:
                conn.settimeout(5)
                hello = session.recv(conn)
                if not hello or hello[0] != "hello":
                    return
                token = hello[2] if len(hello) > 2 else None
                if self.auth_token is not None and not _tokens_match(
                    token, self.auth_token
                ):
                    try:
                        session.send(conn, ("reject", "bad or missing auth token"))
                    except OSError:
                        pass
                    return
                session.send(
                    conn,
                    (
                        "welcome",
                        self._heartbeat_interval(),
                        self._campaign,
                        session.mac_mode,
                    ),
                )
                session.campaign = self._campaign
                session.secure()
                conn.settimeout(self.heartbeat_timeout)
                me = {
                    "pid": hello[1],
                    "last_seen": time.monotonic(),
                    "chunk": None,
                    "leaving": False,
                }
                with self._condition:
                    self._state["joined"] += 1
                    self._fleet[id(me)] = me
                    self._condition.notify_all()
                goodbye: str | None = None
                while True:
                    # -- wait for a chunk from any open map --------------
                    ticket = None
                    task = None
                    while task is None:
                        goodbye = poll_goodbye()
                        if goodbye:
                            break
                        with self._condition:
                            if self._closed.is_set():
                                break
                            if self._state["joined"] >= self.workers_expected:
                                picked = self._pick_locked()
                                if picked is not None:
                                    map_id, chunk_index = picked
                                    entry = self._maps[map_id]
                                    ticket = self._next_ticket
                                    self._next_ticket += 1
                                    self._tasks[ticket] = (map_id, chunk_index)
                                    entry["in_flight"] += 1
                                    me["chunk"] = ticket
                                    me["last_seen"] = time.monotonic()
                                    task = (
                                        "task",
                                        ticket,
                                        entry["worker"],
                                        [
                                            entry["shards"][i]
                                            for i in entry["chunk_shards"][chunk_index]
                                        ],
                                    )
                                    continue
                            self._condition.wait(0.1)
                    if task is None:
                        break  # server closing, or the worker said goodbye
                    # -- dispatch, then pump frames until the reply ------
                    session.send(conn, task)
                    resends = nacks = 0
                    while True:
                        try:
                            reply = session.recv(conn)
                        except FrameRejected:
                            nacks += 1
                            if nacks > _TRANSPORT_RETRIES:
                                raise ConnectionError(
                                    "worker kept sending unusable frames; "
                                    "dropping the connection"
                                )
                            session.send(conn, ("nack",))
                            continue
                        if reply is None:
                            raise ConnectionError("worker hung up mid-task")
                        with self._condition:
                            me["last_seen"] = time.monotonic()
                        if reply[0] == "heartbeat":
                            continue
                        if reply[0] == "leave":
                            goodbye = "leave"
                            continue
                        if reply[0] == "badframe":
                            resends += 1
                            if resends > _TRANSPORT_RETRIES:
                                detail = reply[1] if len(reply) > 1 else "unknown"
                                raise ConnectionError(
                                    "worker could not use the task frame "
                                    f"after {resends} sends: {detail}"
                                )
                            session.send(conn, task)
                            continue
                        if reply[0] in ("result", "error") and reply[1] != ticket:
                            continue  # stale resend from nack crossfire
                        break
                    kind, _, payload = reply
                    with self._condition:
                        owner = self._tasks.pop(ticket, None)
                        entry = self._maps.get(owner[0]) if owner else None
                        if entry is not None:
                            entry["in_flight"] -= 1
                            if kind == "error":
                                entry["error"] = _RemoteTaskError(
                                    f"shard chunk {owner[1]} failed on a fleet "
                                    f"worker:\n{payload}"
                                )
                            elif not entry["cancelled"]:
                                entry["completed"][owner[1]] = payload
                                entry["done"] += 1
                                self._state["done"] += 1
                                self._history.record(
                                    time.monotonic() - self._started,
                                    self._state["done"],
                                )
                        ticket = None
                        me["chunk"] = None
                        self._condition.notify_all()
                    if goodbye:
                        break
                if goodbye == "leave":
                    with self._condition:
                        me["leaving"] = True
                        self._state["left"] += 1
                        self._condition.notify_all()
                try:
                    session.send(conn, ("shutdown",))
                except OSError:
                    pass
        except Exception:
            # Session died with a chunk in flight: hand the chunk back
            # to its owning map (spending its retry budget) so the
            # surviving fleet can finish the campaign — exactly the
            # single-map server's contract, routed through the ticket.
            with self._condition:
                owner = self._tasks.pop(ticket, None) if ticket is not None else None
                entry = self._maps.get(owner[0]) if owner else None
                if entry is not None:
                    chunk_index = owner[1]
                    entry["in_flight"] -= 1
                    entry["attempts"][chunk_index] = (
                        entry["attempts"].get(chunk_index, 0) + 1
                    )
                    self._state["retries"] += 1
                    if entry["attempts"][chunk_index] > self.max_chunk_retries:
                        entry["error"] = RuntimeError(
                            f"shard chunk {chunk_index} was lost by "
                            f"{entry['attempts'][chunk_index]} worker(s) in a "
                            f"row; retry budget ({self.max_chunk_retries}) "
                            "exhausted — failing this campaign (cells already "
                            "streamed to its resume store are safe; other "
                            "campaigns on this fleet are unaffected)"
                        )
                    else:
                        entry["pending"].appendleft(chunk_index)
                self._condition.notify_all()
        finally:
            with self._condition:
                self._state["handlers"] -= 1
                if me is not None:
                    self._fleet.pop(id(me), None)
                self._condition.notify_all()


class MapHandle:
    """Consumer handle for one map opened on a :class:`WorkServer`."""

    def __init__(self, server: WorkServer, map_id: int) -> None:
        self._server = server
        self.map_id = map_id

    def cancel(self) -> None:
        """Stop dispatching this map; discard in-flight results.

        Idempotent and safe from any thread; the consumer iterating
        :meth:`results` wakes promptly with :class:`MapCancelled`.
        """
        server = self._server
        with server._condition:
            entry = server._maps.get(self.map_id)
            if entry is not None:
                entry["cancelled"] = True
                entry["pending"].clear()
                server._condition.notify_all()

    def results(self) -> Iterator[tuple[int, object]]:
        """Yield ``(shard_index, result)`` in completion order.

        Raises :class:`MapCancelled` after :meth:`cancel`, or the map's
        failure (poison chunk, remote error, dead fleet).  Closing the
        generator early deregisters the map and stops its dispatch.
        """
        server = self._server
        condition = server._condition
        try:
            while True:
                with condition:
                    entry = server._maps.get(self.map_id)
                    if entry is None:
                        return
                    while True:
                        if entry["cancelled"]:
                            raise MapCancelled(
                                f"map {self.map_id} was cancelled"
                            )
                        if entry["error"] is not None:
                            raise entry["error"]
                        if entry["completed"]:
                            break
                        if entry["served"] >= entry["expected"]:
                            return
                        if server._closed.is_set():
                            raise RuntimeError(
                                "work server closed with the map incomplete"
                            )
                        server._check_liveness_locked(entry)
                        condition.wait(0.1)
                    index, payload = entry["completed"].popitem()
                    entry["served"] += 1
                    shard_indices = entry["chunk_shards"][index]
                    condition.notify_all()
                for pair in zip(shard_indices, payload):
                    yield pair
        finally:
            server._close_map(self.map_id)


class SharedFleetBackend(ExecutionBackend):
    """Per-campaign :class:`ExecutionBackend` facade over a shared fleet.

    Each service job gets its own facade over the daemon's one
    :class:`WorkServer`, so the ordinary drivers (``run_sweep``,
    ``fig10.run``, ``fleet.run``) run unchanged — resume stores,
    progress, and bit-identity all come for free — while their chunks
    interleave with every other job's on the shared fleet.

    :meth:`cancel` (any thread) aborts the facade's in-flight map with
    :class:`MapCancelled`; :attr:`shards_done` / :attr:`shards_total`
    are the live coverage counters the service's job endpoint reports.
    """

    name = "shared-fleet"

    def __init__(self, server: WorkServer) -> None:
        self._server = server
        self._handle: MapHandle | None = None
        self._cancelled = threading.Event()
        #: Shards submitted to the fleet by this facade (resumed cells
        #: were never submitted, so this is the remaining work).
        self.shards_total = 0
        #: Shards whose results have been yielded back to the driver.
        self.shards_done = 0

    def cancel(self) -> None:
        self._cancelled.set()
        handle = self._handle
        if handle is not None:
            handle.cancel()

    def worker_hint(self) -> int:
        return self._server.worker_hint()

    def imap_unordered(
        self, worker: Callable, shards: Sequence, chunksize: int = 1
    ) -> Iterator[tuple[int, object]]:
        if self._cancelled.is_set():
            raise MapCancelled("campaign cancelled before dispatch")
        handle = self._server.submit(worker, shards, chunksize)
        self._handle = handle
        self.shards_total += len(shards)
        if self._cancelled.is_set():
            # cancel() raced the submit: make sure the map dies too.
            handle.cancel()
        try:
            for pair in handle.results():
                self.shards_done += 1
                yield pair
        finally:
            self._handle = None

    def imap(self, worker: Callable, shards: Sequence, chunksize: int = 1) -> Iterator:
        buffered: dict[int, object] = {}
        next_index = 0
        for index, result in self.imap_unordered(worker, shards, chunksize):
            buffered[index] = result
            while next_index in buffered:
                yield buffered.pop(next_index)
                next_index += 1


def resolve_backend(
    backend: ExecutionBackend | str | None,
    jobs: int | None = None,
    **socket_options,
) -> ExecutionBackend:
    """Materialize a backend from a spec string, instance, or ``jobs`` knob.

    Accepted specs (the CLI's ``--backend`` values):

    * ``None`` — infer from ``jobs``: serial for ``jobs in (None, 1)``,
      otherwise a process pool of ``jobs`` workers (back-compatible with
      the pre-backend ``run_sweep(jobs=...)`` contract).
    * ``"serial"`` / ``"process"`` — the corresponding local backend.
    * ``"socket"`` — loopback socket server spawning ``jobs`` local
      workers (at least one).
    * ``"socket://HOST:PORT"`` — socket server bound to ``HOST:PORT``;
      spawns ``jobs`` local workers, and *additionally* accepts external
      ``python -m repro worker --connect HOST:PORT`` processes.  With
      ``jobs=0`` it spawns none and waits entirely for remote workers.

    ``socket_options`` forwards the campaign-hardening knobs
    (``auth_token``, ``workers_expected``, ``heartbeat_timeout``,
    ``max_chunk_retries``, ``continue_past_quarantine``,
    ``status_port``, ``wire``, ``auto_retry``, ``max_buffered_chunks``)
    to a socket spec's :class:`SocketBackend`; supplying them with a
    non-socket spec or a pre-built instance is an error, because they
    would be silently dropped.
    """
    if isinstance(backend, ExecutionBackend):
        if socket_options:
            raise ValueError(
                "socket options cannot be applied to a pre-built backend "
                "instance; construct the SocketBackend with them instead"
            )
        return backend
    if backend is None:
        if socket_options:
            raise ValueError(
                "socket options (auth_token, workers_expected, ...) require "
                "a socket backend spec"
            )
        worker_count = resolve_jobs(jobs)
        return SerialBackend() if worker_count == 1 else ProcessPoolBackend(worker_count)
    spec = str(backend).strip().lower()
    if spec in ("serial", "process") and socket_options:
        raise ValueError(
            "socket options (auth_token, workers_expected, ...) require "
            f"a socket backend spec, not {spec!r}"
        )
    if spec == "serial":
        return SerialBackend()
    if spec == "process":
        return ProcessPoolBackend(jobs if jobs is not None else 0)
    if spec == "socket":
        # An unset jobs knob means "use the machine" for an explicitly
        # parallel backend, matching the process-pool spec below.
        return SocketBackend(
            spawn_workers=max(1, resolve_jobs(0 if jobs is None else jobs)),
            **socket_options,
        )
    if spec.startswith("socket://"):
        address = spec[len("socket://") :]
        # jobs=0 here means "no local workers, remote only" — unlike the
        # local backends, where 0 means one worker per CPU; unset jobs
        # spawns one per CPU, matching the bare "socket" spec above.
        spawn = 0 if jobs == 0 else resolve_jobs(0 if jobs is None else jobs)
        return SocketBackend(bind=address, spawn_workers=spawn, **socket_options)
    raise ValueError(
        f"unknown backend {backend!r} (expected serial, process, socket, or socket://HOST:PORT)"
    )
