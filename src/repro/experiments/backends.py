"""Pluggable execution backends for the Monte-Carlo shard engine.

The paper's artifact parallelizes its Monte-Carlo jobs across machines
and aggregates raw output files afterwards (§A.7).  This module is the
"across machines" half for the Python reproduction: every exhibit's work
decomposes into self-contained, picklable shards (see
:mod:`repro.experiments.runner`), and a backend decides *where* a shard
executes.  Because shards re-derive all state from seeds, the results
are bit-identical regardless of backend, worker count, or scheduling
order.

Backends
========

* :class:`SerialBackend` — in-process loop (``--backend serial``).
* :class:`ProcessPoolBackend` — a local
  ``concurrent.futures.ProcessPoolExecutor`` (``--backend process``,
  the default whenever ``jobs > 1``).
* :class:`SocketBackend` — a TCP work server.  Shards travel to worker
  processes as length-prefixed pickle frames; workers are either
  spawned locally by the backend (``spawn_workers=N``) or started on
  any machine with the repo installed via::

      python -m repro worker --connect HOST:PORT

  Workers pull chunks of shards, execute them with their own warm
  process-local caches, and stream results back; a worker that
  disconnects mid-chunk has its chunk requeued for the survivors.

Every backend yields results **in shard order** through
:meth:`ExecutionBackend.imap`, so callers can stream completed cells to
a :class:`~repro.experiments.store.ShardStore` while later shards are
still in flight.

Campaign hardening (socket backend)
===================================

Paper-scale campaigns run for hours across many machines, so the socket
backend carries four operational safeguards on top of the base
protocol (see ``docs/distributed.md`` for the runbook):

* **Auth token** — when the server is constructed with ``auth_token``
  (CLI ``--auth-token``, or the ``REPRO_AUTH_TOKEN`` environment
  variable), the worker must present the same secret in its ``hello``
  frame; mismatches receive a ``reject`` frame and are dropped before
  any pickle from the connection is trusted with work.
* **Heartbeats** — a worker streams ``heartbeat`` frames while it
  executes a chunk (the server tells it the cadence in the ``welcome``
  frame).  A server that hears nothing for ``heartbeat_timeout``
  seconds presumes the worker dead — hard-killed, network-partitioned,
  or wedged — and requeues its chunk for the survivors, instead of
  blocking forever on a TCP peer that will never answer.
* **Retry budget** — every requeue of a chunk spends one unit of its
  ``max_chunk_retries`` budget.  A chunk that keeps killing workers
  (a poison shard) is quarantined once the budget is exhausted: the
  map aborts with the chunk's identity instead of feeding every worker
  that joins into the same crash loop.  (With ``--resume``, every cell
  completed before the abort is already durable.)
* **Start barrier** — ``workers_expected=N`` (CLI
  ``--workers-expected N``) holds all task dispatch until ``N`` workers
  have joined, so a paper-scale campaign cannot silently start grinding
  on a single straggler while the rest of the fleet is still booting.
* **Continue past quarantine** — ``continue_past_quarantine=True``
  (CLI ``--continue-past-quarantine``) changes what budget exhaustion
  means: instead of aborting the map, the poison chunk is set aside,
  the rest of the grid completes, and the skipped shard indices are
  published as :attr:`SocketBackend.quarantined_shards` for the
  drivers to report (and record in a ``--resume`` store) so a
  targeted re-run can retry exactly those cells.
* **Status port** — ``status_port=PORT`` (CLI ``--status-port``)
  serves a live one-line JSON snapshot of the map — fleet size,
  per-worker heartbeat age and in-flight chunk, queue depth,
  completed/total chunks, retry and quarantine counts — through
  :class:`~repro.experiments.monitor.StatusServer`; read it with
  ``python -m repro status HOST:PORT`` (see ``docs/operations.md``).

Wire format
===========

Every message on the **work port** is one length-prefixed frame: an
8-byte big-endian payload length followed by that many bytes of pickle
(``pickle.HIGHEST_PROTOCOL``).  The payload is always a tuple whose
first element names the frame kind:

==========  =========  ===================================================
frame       direction  payload
==========  =========  ===================================================
hello       w → s      ``("hello", worker_pid, auth_token_or_None)``
welcome     s → w      ``("welcome", heartbeat_interval_seconds)``
reject      s → w      ``("reject", reason)`` — handshake refused
task        s → w      ``("task", chunk_index, worker_fn, [shards...])``
heartbeat   w → s      ``("heartbeat",)`` — streamed while a task runs
result      w → s      ``("result", chunk_index, [results...])``
error       w → s      ``("error", chunk_index, traceback_text)``
shutdown    s → w      ``("shutdown",)`` — session over, worker may exit
==========  =========  ===================================================

The **status port** is a different protocol entirely — line-delimited
JSON, one ``repro-status-v1`` snapshot per connection, schema in
:mod:`repro.experiments.monitor` — so operators can poll it with
``curl``/``nc`` without speaking pickle.

Security note: the socket protocol exchanges pickles and is meant for
trusted clusters only (the paper's artifact assumes the same); the
default bind address is loopback.  The auth token gates *accidental*
joins (a stray worker pointed at the wrong port, a port scanner) — it
is not a substitute for network-level isolation, because pickles are
code.  The status port is read-only and carries no secrets, but binds
the same host as the work port: routable bind, routable status.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import subprocess
import sys
import threading
import time
import traceback
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Iterator, Sequence

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "SocketBackend",
    "WorkerRejectedError",
    "resolve_backend",
    "resolve_jobs",
    "run_worker",
]

#: Environment variable both server and worker read for the shared secret.
AUTH_TOKEN_ENV = "REPRO_AUTH_TOKEN"

#: Seconds of silence from a busy worker before its chunk is requeued.
DEFAULT_HEARTBEAT_TIMEOUT = 60.0

#: Requeues a chunk may spend on worker deaths before being quarantined.
DEFAULT_CHUNK_RETRIES = 2


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs`` knob: ``None``→1, ``0``→one per CPU."""
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _chunked(shards: Sequence, chunksize: int) -> list[list]:
    chunksize = max(1, int(chunksize))
    return [list(shards[i : i + chunksize]) for i in range(0, len(shards), chunksize)]


class ExecutionBackend(ABC):
    """Strategy for mapping a picklable worker function over shards.

    ``worker`` must be a module-level pure function of one shard so it
    pickles by reference; results come back in shard order for every
    backend, making the backends interchangeable behind
    :func:`~repro.experiments.runner.run_sweep`.
    """

    #: Short name used by CLI ``--backend`` and reprs.
    name: str = "abstract"

    #: Shard indices (into the last map's input sequence) that were set
    #: aside instead of executed.  Only the socket backend's opt-in
    #: ``continue_past_quarantine`` mode ever populates this; the local
    #: backends execute every shard or raise, so it stays empty.
    quarantined_shards: tuple[int, ...] = ()

    @abstractmethod
    def imap(self, worker: Callable, shards: Sequence, chunksize: int = 1) -> Iterator:
        """Yield ``worker(shard)`` for each shard, in shard order.

        Results are yielded as soon as the ordered prefix completes, so
        callers can persist them incrementally; ``chunksize`` groups
        contiguous shards onto one worker to keep their shared
        process-local caches together.
        """

    def map(self, worker: Callable, shards: Sequence, chunksize: int = 1) -> list:
        """Like :meth:`imap` but materialized."""
        return list(self.imap(worker, shards, chunksize=chunksize))

    def imap_unordered(
        self, worker: Callable, shards: Sequence, chunksize: int = 1
    ) -> Iterator[tuple[int, object]]:
        """Yield ``(shard_index, result)`` pairs as completions arrive.

        Parallel backends override this to surface results in completion
        order, so a streaming consumer (the shard store) can make every
        finished shard durable immediately instead of waiting for the
        ordered prefix; the base implementation simply numbers
        :meth:`imap`.
        """
        for index, result in enumerate(self.imap(worker, shards, chunksize=chunksize)):
            yield index, result

    def worker_hint(self) -> int:
        """Expected concurrent workers (callers size chunks from this)."""
        return 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class SerialBackend(ExecutionBackend):
    """Run every shard in the calling process (bit-identical reference)."""

    name = "serial"

    def imap(self, worker: Callable, shards: Sequence, chunksize: int = 1) -> Iterator:
        for shard in shards:
            yield worker(shard)


def _run_chunk(worker: Callable, chunk: list) -> list:
    """Pool task: execute one chunk of shards (module-level, picklable)."""
    return [worker(shard) for shard in chunk]


class ProcessPoolBackend(ExecutionBackend):
    """Fan shards out over a local ``ProcessPoolExecutor``.

    This is the pre-refactor ``jobs > 1`` behaviour, now one strategy
    among several.  ``pool.map`` already yields lazily in submission
    order, so streaming consumers see completed cells as the ordered
    prefix finishes; :meth:`imap_unordered` surfaces them in completion
    order instead.
    """

    name = "process"

    def __init__(
        self,
        jobs: int | None = 0,
        initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        #: Optional per-worker initializer (module-level, picklable), run
        #: once when a pool worker starts.  The shared-cache tier uses it
        #: to attach workers to the parent's published overlay block
        #: (:func:`repro.analysis.shared_memo.attach_worker`); fork-start
        #: children detect the inherited block and return immediately.
        self.initializer = initializer
        self.initargs = tuple(initargs)

    def _pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            initializer=self.initializer,
            initargs=self.initargs,
        )

    def worker_hint(self) -> int:
        return self.jobs

    def imap(self, worker: Callable, shards: Sequence, chunksize: int = 1) -> Iterator:
        if len(shards) <= 1 or self.jobs <= 1:
            yield from SerialBackend().imap(worker, shards, chunksize)
            return
        pool = self._pool()
        try:
            yield from pool.map(worker, shards, chunksize=max(1, chunksize))
        finally:
            # A consumer that stops early (e.g. the shard store hit a
            # disk error) must not wait for the rest of the grid:
            # cancel everything not yet running before joining.
            pool.shutdown(wait=True, cancel_futures=True)

    def imap_unordered(
        self, worker: Callable, shards: Sequence, chunksize: int = 1
    ) -> Iterator[tuple[int, object]]:
        if len(shards) <= 1 or self.jobs <= 1:
            yield from ExecutionBackend.imap_unordered(self, worker, shards, chunksize)
            return
        chunksize = max(1, int(chunksize))
        chunks = _chunked(shards, chunksize)
        pool = self._pool()
        try:
            futures = {
                pool.submit(_run_chunk, worker, chunk): index
                for index, chunk in enumerate(chunks)
            }
            for future in as_completed(futures):
                base = futures[future] * chunksize
                for offset, result in enumerate(future.result()):
                    yield base + offset, result
        finally:
            pool.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
# Socket backend: length-prefixed pickle protocol
# ----------------------------------------------------------------------

_LENGTH = struct.Struct(">Q")


def _send_msg(sock: socket.socket, message: tuple) -> None:
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes, or ``None`` on a clean EOF at byte 0."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count:
                return None
            raise ConnectionError("socket closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_msg(sock: socket.socket) -> tuple | None:
    """Read one length-prefixed frame, or ``None`` on clean EOF."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ConnectionError("socket closed between header and payload")
    return pickle.loads(payload)


def parse_address(address: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (IPv4/hostname) into a connectable tuple."""
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return (host or "127.0.0.1", int(port))


class WorkerRejectedError(RuntimeError):
    """The server refused this worker's join handshake (bad auth token)."""


def _worker_session(
    host: str, port: int, auth_token: str | None = None
) -> tuple[int, bool]:
    """Serve one server connection until it shuts the worker down.

    Returns ``(chunks executed, session ended cleanly)``.  Chunks done
    before the server drops the connection still count — the caller's
    idle detection must not mistake a hard-killed server for a worker
    that never did anything.  Raises :class:`WorkerRejectedError` when
    the server refuses the handshake: retrying cannot help, so the
    caller must not linger.

    While a chunk executes, a companion thread streams ``heartbeat``
    frames at the cadence the server's ``welcome`` frame requested, so
    the server can tell "still computing" from "hard-killed" and
    requeue only the latter.
    """
    executed = 0
    try:
        with socket.create_connection((host, port)) as sock:
            # Heartbeats interleave with result frames on one socket;
            # the lock keeps each length-prefixed frame atomic.
            send_lock = threading.Lock()

            def send(message: tuple) -> None:
                with send_lock:
                    _send_msg(sock, message)

            send(("hello", os.getpid(), auth_token))
            busy = threading.Event()
            stop = threading.Event()
            interval = [DEFAULT_HEARTBEAT_TIMEOUT / 4]

            def beat() -> None:
                while not stop.is_set():
                    if not busy.wait(timeout=0.2):
                        continue
                    try:
                        send(("heartbeat",))
                    except OSError:
                        return
                    stop.wait(interval[0])

            heartbeats = threading.Thread(target=beat, daemon=True)
            heartbeats.start()
            try:
                while True:
                    try:
                        message = _recv_msg(sock)
                    except OSError:
                        raise
                    except Exception:
                        # A frame that fails to *unpickle* (version skew
                        # between the server's repo and this worker's, or a
                        # worker function whose module isn't importable
                        # here) must surface as an error the server aborts
                        # on — crashing instead would just make the server
                        # requeue the chunk onto the next identically-skewed
                        # worker forever.  The frame was fully read, so the
                        # stream stays aligned.
                        send(
                            (
                                "error",
                                -1,
                                "worker could not unpickle a task frame (code skew "
                                f"between server and worker?):\n{traceback.format_exc()}",
                            )
                        )
                        continue
                    if message is None or message[0] == "shutdown":
                        break
                    if message[0] == "welcome":
                        # The server dictates the heartbeat cadence so one
                        # knob (its timeout) governs both sides.
                        if len(message) > 1:
                            interval[0] = max(0.05, float(message[1]))
                        continue
                    if message[0] == "reject":
                        reason = message[1] if len(message) > 1 else "rejected by server"
                        raise WorkerRejectedError(str(reason))
                    try:
                        kind, index, worker, chunk = message
                        if kind != "task":
                            raise ValueError(f"unexpected frame kind {kind!r}")
                    except (ValueError, TypeError):
                        # Same rationale as the unpickle guard: a frame of
                        # the wrong shape (protocol skew) must abort the
                        # server's map, not crash this worker into an
                        # infinite requeue loop.
                        send(
                            (
                                "error",
                                -1,
                                "worker received a malformed task frame (protocol "
                                f"skew between server and worker?):\n{traceback.format_exc()}",
                            )
                        )
                        continue
                    busy.set()
                    try:
                        results = [worker(shard) for shard in chunk]
                    except Exception:
                        busy.clear()
                        send(("error", index, traceback.format_exc()))
                    else:
                        busy.clear()
                        send(("result", index, results))
                        executed += 1
            finally:
                stop.set()
                busy.clear()
    except OSError:
        return executed, False
    return executed, True


def run_worker(
    address: str, linger: float = 0.0, auth_token: str | None = None
) -> tuple[int, bool]:
    """Socket-backend worker loop: ``python -m repro worker --connect ...``.

    Connects to a :class:`SocketBackend` server, then pulls ``task``
    frames (a chunk of shards plus the module-level worker function,
    pickled by reference), executes them, and streams ``result`` frames
    back until the server sends ``shutdown``.  Exceptions inside a task
    are reported as ``error`` frames with the formatted traceback and do
    not kill the worker.  Returns ``(chunks executed, reached)`` where
    ``reached`` records whether any session drained cleanly — the CLI
    uses it to tell "server unreachable" (alarm) from "queue was
    legitimately empty" (healthy) when the count is zero.

    ``auth_token`` is presented in the join handshake; a server that
    requires a different secret answers with a ``reject`` frame, which
    raises :class:`WorkerRejectedError` immediately (no linger retries —
    a wrong secret will be wrong next time too).  The CLI reads the
    token from ``--auth-token`` or the ``REPRO_AUTH_TOKEN`` environment
    variable, which is also how a server passes the secret to the
    workers it spawns itself.

    ``linger`` keeps the worker alive across *servers*: multi-sweep
    exhibits (ext-patterns, headline, ``all``) run one socket map per
    sweep, each draining its workers with ``shutdown``, so after a
    session ends the worker keeps retrying the address for ``linger``
    seconds and joins the next map that binds it.  ``0`` exits after the
    first session (or immediately if no server is listening).
    """
    host, port = parse_address(address)
    executed = 0
    reached = False
    deadline = time.monotonic() + max(0.0, linger)
    while True:
        chunks, clean = _worker_session(host, port, auth_token=auth_token)
        executed += chunks
        reached = reached or clean
        if chunks or clean:
            # A session that served chunks or drained cleanly refreshes
            # the window: the next map of the same exhibit usually
            # starts within moments.  A server that was never reachable
            # does not — the linger clock keeps running.
            deadline = time.monotonic() + max(0.0, linger)
        if time.monotonic() >= deadline:
            return executed, reached
        time.sleep(0.2)


class _RemoteTaskError(RuntimeError):
    """A task raised on a worker; carries the remote traceback."""


#: Placeholder a quarantined chunk leaves in the completion map (continue
#: mode): the consume loop recognizes it, records the chunk's shard
#: indices, and moves on without yielding results for them.
_QUARANTINED = object()


class SocketBackend(ExecutionBackend):
    """Ship shards to worker processes over TCP.

    Args:
        bind: ``HOST:PORT`` to listen on.  Port ``0`` picks an ephemeral
            port (the resolved address is available as ``self.address``
            while a map is running).  Bind a routable host to accept
            workers from other machines.
        spawn_workers: local worker processes to launch per map call
            (each runs ``python -m repro worker --connect``); ``0``
            relies entirely on externally-started workers.
        timeout: overall seconds to wait for results before failing
            (``None`` waits forever — the distributed default, matching
            the artifact's "come back when the machines are done").
        auth_token: shared secret a worker must present in its ``hello``
            frame; ``None`` accepts every worker.  Spawned local workers
            inherit the secret through the ``REPRO_AUTH_TOKEN``
            environment variable (never the command line, which ``ps``
            would show); remote workers pass ``--auth-token`` or set the
            same variable.
        workers_expected: hold every task until this many workers have
            joined (the start barrier for paper-scale fleets); ``0``
            dispatches to the first worker that shows up.
        heartbeat_timeout: seconds of silence from a worker that owns a
            chunk before it is presumed dead and its chunk requeued.
            Workers are told to heartbeat at a quarter of this, so a
            healthy-but-slow chunk never trips it.  ``None`` disables
            the deadline (the pre-hardening behaviour: wait forever).
        max_chunk_retries: worker deaths one chunk may survive before it
            is quarantined as a poison shard and the map aborts, instead
            of crash-looping every worker that joins.
        continue_past_quarantine: opt-in quarantine semantics — a chunk
            that exhausts its retry budget is *set aside* instead of
            aborting the map, the rest of the grid completes, and the
            skipped shard indices are published on
            :attr:`quarantined_shards` after the map for a targeted
            re-run.  Bit-identical for every shard that does execute.
        status_port: serve a live ``repro-status-v1`` JSON snapshot of
            the running map on this TCP port (bound on the same host as
            the work port; ``0`` picks an ephemeral port, resolved as
            :attr:`status_address` while a map runs); ``None`` disables
            the status server entirely.
    """

    name = "socket"

    def __init__(
        self,
        bind: str = "127.0.0.1:0",
        spawn_workers: int = 1,
        timeout: float | None = None,
        auth_token: str | None = None,
        workers_expected: int = 0,
        heartbeat_timeout: float | None = DEFAULT_HEARTBEAT_TIMEOUT,
        max_chunk_retries: int = DEFAULT_CHUNK_RETRIES,
        continue_past_quarantine: bool = False,
        status_port: int | None = None,
    ) -> None:
        self.bind_host, self.bind_port = parse_address(bind)
        if spawn_workers < 0:
            raise ValueError("spawn_workers must be >= 0")
        if workers_expected < 0:
            raise ValueError("workers_expected must be >= 0")
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive (or None)")
        if max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be >= 0")
        if status_port is not None and not 0 <= status_port <= 65535:
            raise ValueError("status_port must be a TCP port (or None)")
        self.spawn_workers = spawn_workers
        self.timeout = timeout
        self.auth_token = auth_token
        self.workers_expected = workers_expected
        self.heartbeat_timeout = heartbeat_timeout
        self.max_chunk_retries = max_chunk_retries
        self.continue_past_quarantine = continue_past_quarantine
        self.status_port = status_port
        #: Resolved ``(host, port)`` of the live listener (set per map).
        self.address: tuple[str, int] | None = None
        #: Resolved ``(host, port)`` of the live status server (per map).
        self.status_address: tuple[str, int] | None = None
        #: Shard indices the last map quarantined (continue mode only).
        self.quarantined_shards: tuple[int, ...] = ()

    def _heartbeat_interval(self) -> float:
        """Cadence workers are told to beat at (quarter of the deadline)."""
        if self.heartbeat_timeout is None:
            return DEFAULT_HEARTBEAT_TIMEOUT / 4
        return max(0.05, self.heartbeat_timeout / 4)

    def worker_hint(self) -> int:
        """Expected workers: exact for spawn-only, padded when remote-capable.

        A loopback bind with spawned workers is effectively a local pool
        of known size.  A routable bind (or a remote-only server,
        ``spawn_workers=0``) can't know how many ``--connect`` workers
        will join; a generous over-estimate keeps chunks small enough
        that late joiners still find work and a dropped worker requeues
        little — it must in particular exceed typical error-count block
        counts (~4), or :func:`~repro.experiments.runner._sweep_chunksize`
        would never split blocks and fleets larger than the block count
        would starve.
        """
        if self.spawn_workers and self.bind_host in ("127.0.0.1", "localhost", "::1"):
            return self.spawn_workers
        return max(self.spawn_workers, 16)

    # -- worker process management ------------------------------------

    def _spawn_local_workers(self, port: int) -> list[subprocess.Popen]:
        """Launch local workers pointed at the live listener.

        A worker must unpickle whatever module-level function the parent
        maps — :mod:`repro` itself however it was found (installed,
        ``PYTHONPATH=src``, a pytest path hack), but also caller-defined
        workers — so the child inherits the parent's full ``sys.path``
        via ``PYTHONPATH``, matching the visibility a forked pool worker
        would have.  (Remote workers are started by hand and only need
        :mod:`repro` importable.)
        """
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(entry for entry in sys.path if entry)
        if self.auth_token is not None:
            # The environment, not the command line: `ps` shows argv to
            # every user on the box, while the child's environment stays
            # private to it.
            env[AUTH_TOKEN_ENV] = self.auth_token
        command = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            f"127.0.0.1:{port}",
            # Spawned workers are per-map: exit with the session instead
            # of lingering for a next server like hand-started ones, and
            # don't alarm when siblings drained the queue first.
            "--linger",
            "0",
            "--spawned",
        ]
        return [
            subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL)
            for _ in range(self.spawn_workers)
        ]

    # -- server ---------------------------------------------------------

    def imap(self, worker: Callable, shards: Sequence, chunksize: int = 1) -> Iterator:
        for _, result in self._execute(worker, shards, chunksize, ordered=True):
            yield result

    def imap_unordered(
        self, worker: Callable, shards: Sequence, chunksize: int = 1
    ) -> Iterator[tuple[int, object]]:
        yield from self._execute(worker, shards, chunksize, ordered=False)

    def _execute(
        self, worker: Callable, shards: Sequence, chunksize: int, ordered: bool
    ) -> Iterator[tuple[int, object]]:
        """Serve the map; yield ``(shard_index, result)`` pairs.

        ``ordered`` yields the shard-order prefix as it completes;
        unordered yields whole chunks in completion order, which lets
        streaming consumers persist every finished shard immediately.
        (``continue_past_quarantine`` requires the unordered path: a
        quarantined chunk is never yielded — its shard indices land on
        :attr:`quarantined_shards` instead — which only
        :meth:`imap_unordered`'s explicit indices can represent.  An
        ordered consumer that hits a quarantine raises rather than
        silently misaligning every later result.)
        """
        self.quarantined_shards = ()
        if not len(shards):
            return
        chunksize = max(1, int(chunksize))
        chunks = _chunked(shards, chunksize)
        total = len(chunks)
        pending: deque[int] = deque(range(total))
        completed: dict[int, list] = {}
        #: Worker deaths charged against each chunk's retry budget.
        attempts: dict[int, int] = {}
        #: Chunk indices set aside in continue-past-quarantine mode.
        quarantined: list[int] = []
        #: Live per-worker registry for the status snapshot: handler id
        #: -> {pid, last_seen, chunk}; mutated only under ``condition``.
        fleet: dict[int, dict] = {}
        state = {"error": None, "handlers": 0, "done": 0, "joined": 0, "retries": 0}
        condition = threading.Condition()
        done = threading.Event()

        def handle(conn: socket.socket) -> None:
            """Serve one worker connection until the whole map completes.

            An idle handler (queue momentarily empty) must *wait*, not
            dismiss its worker: another worker may still fail mid-chunk
            and requeue work that only this one can pick up.
            """
            current: int | None = None
            me: dict | None = None
            try:
                with conn:
                    # A connection that never speaks (port scan, health
                    # probe) must not park this handler forever: while
                    # it counts in state["handlers"], the all-workers-
                    # died fail-fast is suppressed.  Bound the hello.
                    conn.settimeout(5)
                    hello = _recv_msg(conn)
                    if not hello or hello[0] != "hello":
                        return
                    token = hello[2] if len(hello) > 2 else None
                    if self.auth_token is not None and token != self.auth_token:
                        # Reject *before* the connection is trusted with
                        # any task frame; the worker surfaces the reason
                        # and exits instead of linger-retrying.
                        try:
                            _send_msg(conn, ("reject", "bad or missing auth token"))
                        except OSError:
                            pass
                        return
                    _send_msg(conn, ("welcome", self._heartbeat_interval()))
                    # While a chunk is in flight every frame — heartbeat
                    # or reply — must arrive within the deadline, or the
                    # worker is presumed dead and the chunk requeued.
                    conn.settimeout(self.heartbeat_timeout)
                    me = {"pid": hello[1], "last_seen": time.monotonic(), "chunk": None}
                    with condition:
                        state["joined"] += 1
                        fleet[id(me)] = me
                        condition.notify_all()
                    while True:
                        with condition:
                            while (
                                (not pending or state["joined"] < self.workers_expected)
                                and state["error"] is None
                                and state["done"] < total
                                and not done.is_set()
                            ):
                                condition.wait(0.1)
                            if (
                                done.is_set()  # consumer abandoned the map
                                or state["error"] is not None
                                or state["done"] >= total
                            ):
                                break
                            current = pending.popleft()
                            me["chunk"] = current
                            me["last_seen"] = time.monotonic()
                        _send_msg(conn, ("task", current, worker, chunks[current]))
                        while True:
                            reply = _recv_msg(conn)
                            if reply is None:
                                raise ConnectionError("worker hung up mid-task")
                            with condition:
                                me["last_seen"] = time.monotonic()
                            if reply[0] != "heartbeat":
                                break
                        kind, index, payload = reply
                        with condition:
                            if kind == "error":
                                state["error"] = _RemoteTaskError(
                                    f"shard chunk {index} failed on a socket worker:\n{payload}"
                                )
                            else:
                                completed[index] = payload
                                state["done"] += 1
                            current = None
                            me["chunk"] = None
                            condition.notify_all()
                    try:
                        _send_msg(conn, ("shutdown",))
                    except OSError:
                        pass
            except Exception:
                # Any handler failure — a dropped connection, a missed
                # heartbeat deadline, but also a malformed or unpicklable
                # reply frame — must give the in-flight chunk back to
                # surviving workers, or the map would wait forever on a
                # chunk nobody owns.  Each requeue spends retry budget:
                # a chunk that keeps killing workers is quarantined
                # instead of crash-looping the whole fleet — aborting the
                # map with its identity by default, or (opt-in) setting
                # just that chunk aside and finishing the grid.
                with condition:
                    if current is not None:
                        attempts[current] = attempts.get(current, 0) + 1
                        state["retries"] += 1
                        if attempts[current] > self.max_chunk_retries:
                            if self.continue_past_quarantine:
                                quarantined.append(current)
                                completed[current] = _QUARANTINED
                                state["done"] += 1
                            else:
                                state["error"] = RuntimeError(
                                    f"shard chunk {current} was lost by "
                                    f"{attempts[current]} worker(s) in a row; retry "
                                    f"budget ({self.max_chunk_retries}) exhausted — "
                                    "quarantining it as a poison chunk.  Investigate "
                                    "the shard (or raise max_chunk_retries, or run "
                                    "with --continue-past-quarantine); cells "
                                    "already streamed to a --resume store are safe."
                                )
                        else:
                            pending.appendleft(current)
                    condition.notify_all()
            finally:
                with condition:
                    state["handlers"] -= 1
                    if me is not None:
                        fleet.pop(id(me), None)
                    condition.notify_all()

        def accept_loop(listener: socket.socket) -> None:
            listener.settimeout(0.1)
            while not done.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                with condition:
                    state["handlers"] += 1
                threading.Thread(target=handle, args=(conn,), daemon=True).start()

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        acceptor = threading.Thread(target=accept_loop, args=(listener,), daemon=True)
        workers: list[subprocess.Popen] = []
        status_server = None
        started_at = time.monotonic()

        def snapshot() -> dict:
            """Assemble the repro-status-v1 JSON snapshot (status port)."""
            with condition:
                now = time.monotonic()
                in_flight = sum(
                    1 for info in fleet.values() if info["chunk"] is not None
                )
                return {
                    "format": "repro-status-v1",
                    "elapsed": round(now - started_at, 3),
                    "fleet": {
                        "size": len(fleet),
                        "joined_total": state["joined"],
                        "expected": self.workers_expected,
                    },
                    "workers": [
                        {
                            "pid": info["pid"],
                            "heartbeat_age": round(now - info["last_seen"], 3),
                            "chunk": info["chunk"],
                        }
                        for info in fleet.values()
                    ],
                    "chunks": {
                        "total": total,
                        "done": state["done"],
                        "pending": len(pending),
                        "in_flight": in_flight,
                    },
                    "retries": state["retries"],
                    "quarantined": sorted(quarantined),
                }

        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        served = 0
        next_chunk = 0
        quarantined_shards: list[int] = []
        # Everything after the socket exists runs under the finally: a
        # failure while binding, starting the acceptor, or spawning
        # workers must still release the port, stop the acceptor, and
        # reap whatever processes already launched — a leaked listener
        # would EADDRINUSE every later map on a fixed socket:// port.
        try:
            listener.bind((self.bind_host, self.bind_port))
            listener.listen()
            self.address = listener.getsockname()[:2]
            if self.status_port is not None:
                from repro.experiments.monitor import StatusServer

                status_server = StatusServer(
                    (self.bind_host, self.status_port), snapshot
                ).start()
                self.status_address = status_server.address
            acceptor.start()
            workers = self._spawn_local_workers(self.address[1])
            while served < total:
                with condition:
                    while state["error"] is None and not (
                        next_chunk in completed if ordered else completed
                    ):
                        self._check_liveness(workers, state, total)
                        if deadline is not None and time.monotonic() > deadline:
                            barrier = (
                                f" (start barrier: {state['joined']} of "
                                f"{self.workers_expected} expected workers joined)"
                                if state["joined"] < self.workers_expected
                                else ""
                            )
                            raise TimeoutError(
                                f"socket backend timed out with {total - state['done']}"
                                f" chunk(s) outstanding{barrier}"
                            )
                        condition.wait(timeout=0.1)
                    if state["error"] is not None:
                        raise state["error"]
                    # Pop so the backend holds only the unconsumed
                    # chunks, not every chunk of the map.
                    if ordered:
                        index = next_chunk
                        results = completed.pop(index)
                        next_chunk += 1
                    else:
                        index, results = completed.popitem()
                served += 1
                base = index * chunksize
                if results is _QUARANTINED:
                    if ordered:
                        # imap()/map() callers pair results with shards
                        # positionally; silently skipping a chunk would
                        # shift every later result onto the wrong shard.
                        # Only the index-carrying imap_unordered path can
                        # skip safely.
                        raise RuntimeError(
                            f"shard chunk {index} was quarantined, but this map "
                            "was consumed in shard order (imap/map), which "
                            "cannot represent a hole; use imap_unordered with "
                            "continue_past_quarantine"
                        )
                    quarantined_shards.extend(
                        range(base, base + len(chunks[index]))
                    )
                    self.quarantined_shards = tuple(quarantined_shards)
                    print(
                        f"repro: chunk {index} quarantined after exhausting its "
                        f"retry budget ({self.max_chunk_retries}); continuing "
                        "with the rest of the grid (--continue-past-quarantine)",
                        file=sys.stderr,
                    )
                    continue
                for offset, result in enumerate(results):
                    yield base + offset, result
        finally:
            # Reached on normal completion AND when the consumer closes
            # the generator early (e.g. the shard store hit a disk
            # error): handlers see the event, stop dispatching pending
            # chunks, and shut their workers down instead of burning
            # cluster CPU on an abandoned map.
            done.set()
            with condition:
                condition.notify_all()
            listener.close()
            if status_server is not None:
                status_server.close()
            if acceptor.ident is not None:  # never started if bind failed
                acceptor.join(timeout=5)
            for process in workers:
                try:
                    process.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover - cleanup
                    process.kill()
            self.address = None
            self.status_address = None

    def _check_liveness(self, workers, state, total) -> None:
        """Fail fast when every possible worker is gone but work remains.

        Only applies when the backend spawned its own workers: a server
        awaiting external ``--connect`` workers legitimately idles.
        """
        if not workers or state["handlers"] > 0:
            return
        if state["done"] >= total:
            return
        if all(process.poll() is not None for process in workers):
            state["error"] = RuntimeError(
                "all spawned socket workers exited with "
                f"{total - state['done']} chunk(s) outstanding "
                f"(exit codes: {[process.returncode for process in workers]})"
            )


def resolve_backend(
    backend: ExecutionBackend | str | None,
    jobs: int | None = None,
    **socket_options,
) -> ExecutionBackend:
    """Materialize a backend from a spec string, instance, or ``jobs`` knob.

    Accepted specs (the CLI's ``--backend`` values):

    * ``None`` — infer from ``jobs``: serial for ``jobs in (None, 1)``,
      otherwise a process pool of ``jobs`` workers (back-compatible with
      the pre-backend ``run_sweep(jobs=...)`` contract).
    * ``"serial"`` / ``"process"`` — the corresponding local backend.
    * ``"socket"`` — loopback socket server spawning ``jobs`` local
      workers (at least one).
    * ``"socket://HOST:PORT"`` — socket server bound to ``HOST:PORT``;
      spawns ``jobs`` local workers, and *additionally* accepts external
      ``python -m repro worker --connect HOST:PORT`` processes.  With
      ``jobs=0`` it spawns none and waits entirely for remote workers.

    ``socket_options`` forwards the campaign-hardening knobs
    (``auth_token``, ``workers_expected``, ``heartbeat_timeout``,
    ``max_chunk_retries``, ``continue_past_quarantine``,
    ``status_port``) to a socket spec's :class:`SocketBackend`;
    supplying them with a non-socket spec or a pre-built instance is an
    error, because they would be silently dropped.
    """
    if isinstance(backend, ExecutionBackend):
        if socket_options:
            raise ValueError(
                "socket options cannot be applied to a pre-built backend "
                "instance; construct the SocketBackend with them instead"
            )
        return backend
    if backend is None:
        if socket_options:
            raise ValueError(
                "socket options (auth_token, workers_expected, ...) require "
                "a socket backend spec"
            )
        worker_count = resolve_jobs(jobs)
        return SerialBackend() if worker_count == 1 else ProcessPoolBackend(worker_count)
    spec = str(backend).strip().lower()
    if spec in ("serial", "process") and socket_options:
        raise ValueError(
            "socket options (auth_token, workers_expected, ...) require "
            f"a socket backend spec, not {spec!r}"
        )
    if spec == "serial":
        return SerialBackend()
    if spec == "process":
        return ProcessPoolBackend(jobs if jobs is not None else 0)
    if spec == "socket":
        # An unset jobs knob means "use the machine" for an explicitly
        # parallel backend, matching the process-pool spec below.
        return SocketBackend(
            spawn_workers=max(1, resolve_jobs(0 if jobs is None else jobs)),
            **socket_options,
        )
    if spec.startswith("socket://"):
        address = spec[len("socket://") :]
        # jobs=0 here means "no local workers, remote only" — unlike the
        # local backends, where 0 means one worker per CPU; unset jobs
        # spawns one per CPU, matching the bare "socket" spec above.
        spawn = 0 if jobs == 0 else resolve_jobs(0 if jobs is None else jobs)
        return SocketBackend(bind=address, spawn_workers=spawn, **socket_options)
    raise ValueError(
        f"unknown backend {backend!r} (expected serial, process, socket, or socket://HOST:PORT)"
    )
