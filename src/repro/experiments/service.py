"""Profiling-as-a-service: the ``repro serve`` campaign daemon.

Every campaign used to be one foreground CLI process.  This module is
the persistent alternative: a daemon that owns one shared worker fleet
(a multi-map :class:`~repro.experiments.backends.WorkServer`), accepts
campaign jobs over an HTTP/JSON API, and multiplexes the running jobs
over that fleet with round-robin chunk fairness.  The job state
machine, durability, and crash healing live in
:mod:`repro.experiments.scheduler`; this module is only the wire.

HTTP API (all JSON)
===================

=======================  =============================================
``POST /jobs``           submit a job spec (see
                         :func:`~repro.experiments.scheduler.parse_job_spec`);
                         201 with the job record, 400 with a reason on
                         a bad spec — never a traceback
``GET /jobs``            every known job, oldest first
``GET /jobs/ID``         one job, with live ``coverage`` and
                         ``eta_seconds`` while it runs
``POST /jobs/ID/cancel`` cancel: queued jobs instantly, running jobs
                         by aborting their fleet map; 409 once terminal
``GET /jobs/ID/result``  the persisted result payload; 409 with the
                         job state until it is ``done``
``GET /status``          the fleet's ``repro-status-v2`` snapshot
                         (throughput-history ring buffer included)
                         plus per-state job counts
=======================  =============================================

When the daemon holds an auth token (``--auth-token`` or
``REPRO_AUTH_TOKEN``), the same secret scopes both planes: worker
sessions authenticate their ``repro-wire-v1`` HMAC frames with it, and
the mutating HTTP endpoints (``POST``) require it in an
``X-Auth-Token`` header.  Reads stay open, like the status port.

See ``docs/service.md`` for the runbook (curl walkthrough, fairness
and restart-recovery drills).
"""

from __future__ import annotations

import argparse
import hmac
import json
import os
import signal
import sys
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.experiments.backends import AUTH_TOKEN_ENV, WIRE_CHOICES, WorkServer
from repro.experiments.scheduler import JobScheduler, JobSpecError

__all__ = [
    "CampaignService",
    "build_serve_parser",
    "serve_main",
    "build_jobs_parser",
    "jobs_main",
]

#: Default HTTP port of ``repro serve`` (work port stays ephemeral).
DEFAULT_HTTP_PORT = 7180

#: Header carrying the shared secret on mutating requests.
AUTH_HEADER = "X-Auth-Token"


class CampaignService:
    """One daemon: shared fleet + job scheduler + HTTP API."""

    def __init__(
        self,
        state_dir: str,
        host: str = "127.0.0.1",
        http_port: int = 0,
        work_port: int = 0,
        workers: int = 2,
        auth_token: str | None = None,
        workers_expected: int = 0,
        heartbeat_timeout: float | None = None,
        wire: str = "v1",
        status_port: int | None = None,
        max_concurrent: int = 4,
        worker_linger: float = 5.0,
    ) -> None:
        from repro.experiments.backends import DEFAULT_HEARTBEAT_TIMEOUT

        self.host = host
        self.auth_token = auth_token
        self.fleet = WorkServer(
            bind=f"{host}:{work_port}",
            spawn_workers=workers,
            auth_token=auth_token,
            workers_expected=workers_expected,
            heartbeat_timeout=(
                DEFAULT_HEARTBEAT_TIMEOUT
                if heartbeat_timeout is None
                else heartbeat_timeout
            ),
            wire=wire,
            status_port=status_port,
            worker_linger=worker_linger,
        )
        self.scheduler = JobScheduler(self.fleet, state_dir, max_concurrent)
        self._http_port = http_port
        self._httpd: ThreadingHTTPServer | None = None
        self._http_thread: threading.Thread | None = None
        #: Jobs crash recovery re-enqueued on this start (logged once).
        self.healed_jobs: list[str] = []

    # -- lifecycle ------------------------------------------------------

    @property
    def http_address(self) -> tuple[str, int] | None:
        if self._httpd is None:
            return None
        return self._httpd.server_address[:2]

    def start(self) -> "CampaignService":
        self.fleet.start()
        self.healed_jobs = [job.id for job in self.scheduler.recover()]
        self.scheduler.start()
        service = self

        class Handler(_ServiceHandler):
            pass

        Handler.service = service
        self._httpd = ThreadingHTTPServer((self.host, self._http_port), Handler)
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._http_thread.start()
        return self

    def close(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None and self._http_thread.ident is not None:
            self._http_thread.join(timeout=5)
        self.scheduler.close()
        self.fleet.close()

    # -- snapshot -------------------------------------------------------

    def status(self) -> dict:
        """The fleet's v2 snapshot extended with job-state counts."""
        snapshot = self.fleet.snapshot()
        snapshot["jobs"] = self.scheduler.counts()
        return snapshot


class _ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning :class:`CampaignService`."""

    service: CampaignService  # injected per daemon by start()
    protocol_version = "HTTP/1.1"
    #: Service identity in responses; fixed so tests can pin the API.
    server_version = "repro-serve/1"

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # One concise access line on stderr; the default BaseHTTPServer
        # format includes client address which is noise on loopback.
        print(f"repro serve: {format % args}", file=sys.stderr)

    def _reply(self, code: int, payload: dict) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8") + b"\n"
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _authorized(self) -> bool:
        token = self.service.auth_token
        if token is None:
            return True
        presented = self.headers.get(AUTH_HEADER, "")
        return hmac.compare_digest(presented.encode(), token.encode())

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise JobSpecError("request body must be a JSON object")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise JobSpecError(f"request body is not valid JSON: {error}") from None

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        try:
            path = self.path.rstrip("/")
            if path in ("", "/status"):
                self._reply(200, self.service.status())
                return
            if path == "/jobs":
                self._reply(
                    200,
                    {"jobs": [job.describe() for job in self.service.scheduler.list()]},
                )
                return
            parts = path.strip("/").split("/")
            if len(parts) == 2 and parts[0] == "jobs":
                job = self.service.scheduler.get(parts[1])
                if job is None:
                    self._reply(404, {"error": f"no such job {parts[1]!r}"})
                    return
                self._reply(200, job.describe())
                return
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                job = self.service.scheduler.get(parts[1])
                if job is None:
                    self._reply(404, {"error": f"no such job {parts[1]!r}"})
                    return
                if job.state != "done":
                    detail = {"error": f"job {job.id} is {job.state}, not done",
                              "state": job.state}
                    if job.error:
                        detail["reason"] = job.error
                    self._reply(409, detail)
                    return
                result = self.service.scheduler.result(job.id)
                if result is None:  # pragma: no cover - done implies persisted
                    self._reply(500, {"error": "result file missing"})
                    return
                self._reply(200, result)
                return
            self._reply(404, {"error": f"unknown endpoint {self.path!r}"})
        except Exception as error:  # noqa: BLE001 - HTTP boundary
            self._reply(500, {"error": f"{type(error).__name__}: {error}"})

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        try:
            if not self._authorized():
                self._reply(
                    401,
                    {"error": f"missing or wrong {AUTH_HEADER} header "
                              "(this daemon runs with an auth token)"},
                )
                return
            path = self.path.rstrip("/")
            if path == "/jobs":
                try:
                    spec = self._read_json()
                    job = self.service.scheduler.submit(spec)
                except JobSpecError as error:
                    self._reply(400, {"error": str(error)})
                    return
                self._reply(201, job.describe())
                return
            parts = path.strip("/").split("/")
            if len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                job = self.service.scheduler.get(parts[1])
                if job is None:
                    self._reply(404, {"error": f"no such job {parts[1]!r}"})
                    return
                if job.state in ("done", "failed", "cancelled"):
                    self._reply(
                        409,
                        {"error": f"job {job.id} is already {job.state}",
                         "state": job.state},
                    )
                    return
                self.service.scheduler.cancel(job.id)
                self._reply(200, job.describe())
                return
            self._reply(404, {"error": f"unknown endpoint {self.path!r}"})
        except Exception as error:  # noqa: BLE001 - HTTP boundary
            self._reply(500, {"error": f"{type(error).__name__}: {error}"})


# ----------------------------------------------------------------------
# CLI: python -m repro serve / python -m repro jobs
# ----------------------------------------------------------------------


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the persistent campaign daemon: one shared worker "
        "fleet, an HTTP/JSON job API, and durable per-job resume stores "
        "(runbook: docs/service.md).",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_HTTP_PORT,
        help=f"HTTP API port (default: {DEFAULT_HTTP_PORT}; 0 = ephemeral)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind host for the HTTP API and the fleet work port "
        "(default: 127.0.0.1)",
    )
    parser.add_argument(
        "--state-dir",
        default="repro-service",
        metavar="DIR",
        help="durable state: job records, per-job resume stores, results "
        "(default: ./repro-service); restarting with the same DIR "
        "re-attaches and heals interrupted jobs",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="local fleet workers to spawn (default: 2); external workers "
        "may additionally join the work port with python -m repro worker",
    )
    parser.add_argument(
        "--work-port",
        type=int,
        default=0,
        metavar="PORT",
        help="fixed fleet work port for external workers (default: ephemeral)",
    )
    parser.add_argument(
        "--auth-token",
        default=None,
        help="shared fleet secret; also required as the X-Auth-Token header "
        f"on mutating API calls (defaults to ${AUTH_TOKEN_ENV} when set)",
    )
    parser.add_argument(
        "--workers-expected",
        type=int,
        default=0,
        metavar="N",
        help="hold all job dispatch until N workers joined the fleet",
    )
    parser.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="silence deadline before a worker's chunk is requeued",
    )
    parser.add_argument(
        "--wire",
        choices=sorted(WIRE_CHOICES),
        default="v1",
        help="fleet frame codec (default: v1)",
    )
    parser.add_argument(
        "--status-port",
        type=int,
        default=None,
        metavar="PORT",
        help="additionally serve the classic one-line status snapshot "
        "(python -m repro status HOST:PORT)",
    )
    parser.add_argument(
        "--max-concurrent",
        type=int,
        default=4,
        metavar="N",
        help="jobs allowed to run at once; the rest queue (default: 4)",
    )
    return parser


def serve_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro serve``."""
    args = build_serve_parser().parse_args(argv)
    token = args.auth_token
    if token is None:
        token = os.environ.get(AUTH_TOKEN_ENV) or None
    elif not token:
        print(
            "repro serve: the auth token is empty; unset it or provide a "
            "real secret",
            file=sys.stderr,
        )
        return 2
    service = CampaignService(
        state_dir=args.state_dir,
        host=args.host,
        http_port=args.port,
        work_port=args.work_port,
        workers=args.workers,
        auth_token=token,
        workers_expected=args.workers_expected,
        heartbeat_timeout=args.heartbeat_timeout,
        wire=args.wire,
        status_port=args.status_port,
        max_concurrent=args.max_concurrent,
    )
    try:
        service.start()
    except OSError as error:
        print(f"repro serve: cannot start: {error}", file=sys.stderr)
        return 1
    stop = threading.Event()

    def _stop(signum, frame) -> None:  # noqa: ARG001 - signal API
        stop.set()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    host, port = service.http_address
    work_host, work_port = service.fleet.address
    # The readiness line is machine-parsed (tests, tmux drills): keep
    # the `http://HOST:PORT` and `work HOST:PORT` shapes stable.
    line = (
        f"repro serve: listening on http://{host}:{port} · "
        f"work {work_host}:{work_port} · state {args.state_dir}"
    )
    if service.fleet.status_address is not None:
        line += f" · status {service.fleet.status_address[0]}:{service.fleet.status_address[1]}"
    print(line, flush=True)
    if service.healed_jobs:
        print(
            f"repro serve: healed {len(service.healed_jobs)} interrupted "
            f"job(s): {', '.join(service.healed_jobs)}",
            flush=True,
        )
    try:
        while not stop.is_set():
            stop.wait(0.2)
    finally:
        service.close()
    print("repro serve: stopped", flush=True)
    return 0


def build_jobs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro jobs",
        description="Thin HTTP client for a repro serve daemon "
        "(anything HTTP works too — see docs/service.md for the curl "
        "equivalents).",
    )
    parser.add_argument("url", help="daemon base URL, e.g. http://127.0.0.1:7180")
    parser.add_argument(
        "action",
        choices=["list", "submit", "show", "cancel", "result", "status"],
        help="list jobs · submit a spec · show/cancel/fetch one job · "
        "fleet status",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="job id (show/cancel/result) or spec JSON / @file / '-' for "
        "stdin (submit)",
    )
    parser.add_argument(
        "--auth-token",
        default=None,
        help="X-Auth-Token for mutating calls "
        f"(defaults to ${AUTH_TOKEN_ENV} when set)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="HTTP timeout (default: 10)",
    )
    return parser


def _http_json(
    method: str,
    url: str,
    payload: dict | None = None,
    token: str | None = None,
    timeout: float = 10.0,
) -> tuple[int, dict]:
    body = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(url, data=body, method=method)
    request.add_header("Content-Type", "application/json")
    if token:
        request.add_header(AUTH_HEADER, token)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        detail = error.read().decode("utf-8", errors="replace")
        try:
            return error.code, json.loads(detail)
        except json.JSONDecodeError:
            return error.code, {"error": detail.strip() or str(error)}


def jobs_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro jobs URL ACTION [TARGET]``."""
    args = build_jobs_parser().parse_args(argv)
    base = args.url.rstrip("/")
    if "://" not in base:
        base = f"http://{base}"
    token = args.auth_token
    if token is None:
        token = os.environ.get(AUTH_TOKEN_ENV) or None
    try:
        if args.action == "list":
            code, payload = _http_json("GET", f"{base}/jobs", timeout=args.timeout)
        elif args.action == "status":
            code, payload = _http_json("GET", f"{base}/status", timeout=args.timeout)
        elif args.action == "submit":
            if args.target is None:
                print("repro jobs: submit needs a spec (JSON, @file, or -)",
                      file=sys.stderr)
                return 2
            raw = args.target
            if raw == "-":
                raw = sys.stdin.read()
            elif raw.startswith("@"):
                with open(raw[1:], "r", encoding="utf-8") as handle:
                    raw = handle.read()
            try:
                spec = json.loads(raw)
            except json.JSONDecodeError as error:
                print(f"repro jobs: spec is not valid JSON: {error}", file=sys.stderr)
                return 2
            code, payload = _http_json(
                "POST", f"{base}/jobs", spec, token, args.timeout
            )
        else:
            if args.target is None:
                print(f"repro jobs: {args.action} needs a job id", file=sys.stderr)
                return 2
            if args.action == "show":
                code, payload = _http_json(
                    "GET", f"{base}/jobs/{args.target}", timeout=args.timeout
                )
            elif args.action == "cancel":
                code, payload = _http_json(
                    "POST", f"{base}/jobs/{args.target}/cancel", None, token,
                    args.timeout,
                )
            else:  # result
                code, payload = _http_json(
                    "GET", f"{base}/jobs/{args.target}/result", timeout=args.timeout
                )
    except (OSError, urllib.error.URLError) as error:
        print(f"repro jobs: cannot reach {base}: {error}", file=sys.stderr)
        return 1
    print(json.dumps(payload, indent=2))
    return 0 if 200 <= code < 300 else 1
