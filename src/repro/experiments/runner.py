"""Shared Monte-Carlo sweep engine for the profiler-coverage exhibits.

Runs every (pre-correction error count, per-bit probability, profiler) cell
of a :class:`~repro.experiments.config.SweepConfig` and reduces each
simulated word to the compact :class:`WordMetrics` record that Figs 6-9
consume.  Ground truth is computed once per word and shared by all
profilers; failure draws are shared through the word seed (see
:mod:`repro.profiling.runner`), reproducing the paper's same-errors
fairness guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.atrisk import GroundTruth, compute_ground_truth, max_simultaneous_post_errors
from repro.ecc.hamming import random_sec_code
from repro.ecc.linear_code import SystematicCode
from repro.memory.error_model import WordErrorProfile, sample_word_profile
from repro.profiling import PROFILER_REGISTRY
from repro.profiling.runner import WordRunResult, simulate_word
from repro.utils.rng import derive_rng, derive_seed

__all__ = ["WordMetrics", "SweepCell", "SweepResult", "run_sweep", "metrics_for_run"]


@dataclass(frozen=True)
class WordMetrics:
    """Per-round metrics of one (profiler, word) simulation.

    All lists have one entry per profiling round (cumulative state *after*
    that round).
    """

    direct_total: int
    direct_identified: tuple[int, ...]
    indirect_total: int
    indirect_missed: tuple[int, ...]
    post_total: int
    post_identified: tuple[int, ...]
    #: Required secondary-ECC capability per round (Fig 9 metric).
    capability: tuple[int, ...]
    #: 1-based round of first direct-risk identification, censored to the
    #: simulated round count when no direct bit was ever identified (Fig 7).
    first_direct_round: int


@dataclass
class SweepCell:
    """All word metrics of one (error count, probability, profiler) cell."""

    error_count: int
    probability: float
    profiler: str
    words: list[WordMetrics]


@dataclass
class SweepResult:
    """Results of a full sweep, keyed by (error_count, probability, profiler)."""

    config: object
    cells: dict[tuple[int, float, str], SweepCell]

    def cell(self, error_count: int, probability: float, profiler: str) -> SweepCell:
        return self.cells[(error_count, probability, profiler)]


def metrics_for_run(
    run: WordRunResult,
    ground_truth: GroundTruth,
    num_rounds: int,
) -> WordMetrics:
    """Reduce a simulation trace to the compact per-word metrics record.

    The required-capability metric is recomputed only at rounds where the
    identified set actually grows (identification is monotonic), keeping
    the reduction linear in practice.
    """
    direct = ground_truth.direct_at_risk
    indirect = ground_truth.indirect_at_risk
    post = ground_truth.post_correction_at_risk

    direct_identified: list[int] = []
    indirect_missed: list[int] = []
    post_identified: list[int] = []
    capability: list[int] = []
    first_direct = num_rounds
    previous: frozenset[int] | None = None
    previous_capability = 0
    for round_index, identified in enumerate(run.identified_per_round):
        if previous is None or identified != previous:
            missed = post - identified
            previous_capability = max_simultaneous_post_errors(ground_truth, missed)
            previous = identified
        direct_hits = len(identified & direct)
        direct_identified.append(direct_hits)
        indirect_missed.append(len(indirect - identified))
        post_identified.append(len(identified & post))
        capability.append(previous_capability)
        if direct_hits and first_direct == num_rounds:
            # Record the first round with a direct identification; a first
            # hit exactly at the censoring bound is indistinguishable from
            # (and recorded as) the censored value, matching the paper's
            # conservative Fig 7 plotting.
            first_direct = round_index + 1
    return WordMetrics(
        direct_total=len(direct),
        direct_identified=tuple(direct_identified),
        indirect_total=len(indirect),
        indirect_missed=tuple(indirect_missed),
        post_total=len(post),
        post_identified=tuple(post_identified),
        capability=tuple(capability),
        first_direct_round=first_direct,
    )


def _make_words(
    config,
    error_count: int,
    probability: float,
) -> list[tuple[SystematicCode, WordErrorProfile, GroundTruth, int]]:
    """Sample the (code, profile, ground truth, seed) tuples of one cell.

    Word sampling depends only on (seed, error count) so that every
    probability level and every profiler sees the exact same codes and
    at-risk positions — the probability only rescales the failure draws.
    """
    words = []
    for code_index in range(config.num_codes):
        code_rng = derive_rng(config.seed, "code", config.k, code_index)
        code = random_sec_code(config.k, code_rng)
        for word_index in range(config.words_per_code):
            word_rng = derive_rng(config.seed, "word", error_count, code_index, word_index)
            profile = sample_word_profile(code, error_count, probability, word_rng)
            ground_truth = compute_ground_truth(code, profile)
            word_seed = derive_seed(config.seed, "draws", error_count, code_index, word_index)
            words.append((code, profile, ground_truth, word_seed))
    return words


def run_sweep(config) -> SweepResult:
    """Execute the full (error count x probability x profiler) grid."""
    cells: dict[tuple[int, float, str], SweepCell] = {}
    for error_count in config.error_counts:
        for probability in config.probabilities:
            words = _make_words(config, error_count, probability)
            for profiler_name in config.profilers:
                profiler_cls = PROFILER_REGISTRY[profiler_name]
                metrics: list[WordMetrics] = []
                for code, profile, ground_truth, word_seed in words:
                    profiler = profiler_cls(code, seed=word_seed, pattern=config.pattern)
                    run = simulate_word(profiler, profile, config.num_rounds, word_seed)
                    metrics.append(metrics_for_run(run, ground_truth, config.num_rounds))
                cells[(error_count, probability, profiler_name)] = SweepCell(
                    error_count=error_count,
                    probability=probability,
                    profiler=profiler_name,
                    words=metrics,
                )
    return SweepResult(config=config, cells=cells)
