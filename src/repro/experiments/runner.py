"""Parallel, cache-aware Monte-Carlo sweep engine for the profiler exhibits.

Executes every (pre-correction error count, per-bit probability, profiler)
cell of a :class:`~repro.experiments.config.SweepConfig` and reduces each
simulated word to the compact :class:`WordMetrics` record that Figs 6-9
consume.

Architecture
============

The grid decomposes into self-contained, picklable work units — one
:class:`SweepShard` per cell — executed by a pluggable
:class:`~repro.experiments.backends.ExecutionBackend`: in-process
(``SerialBackend``), across a local
``concurrent.futures.ProcessPoolExecutor`` (``ProcessPoolBackend``,
what ``jobs>1`` selects, with ``jobs=0`` meaning one worker per CPU),
or shipped to worker processes on any machine over the
``SocketBackend``'s length-prefixed pickle protocol
(``python -m repro worker --connect HOST:PORT``).  Every quantity a
shard needs is re-derived from the experiment seed through the
:func:`~repro.utils.rng.derive_seed` key-path scheme, so results are
bit-identical regardless of backend, worker count, scheduling order, or
start method; ``run_sweep(config, jobs=N)`` and
``run_sweep(config, backend=...)`` equal ``run_sweep(config)`` cell for
cell.

Completed cells stream: backends yield results as the ordered prefix
finishes, and ``run_sweep(config, resume=PATH)`` appends each cell to a
:class:`~repro.experiments.store.ShardStore` JSONL file the moment it
arrives — an interrupted sweep rerun with the same ``resume`` path
skips every persisted cell and merges the store's cells with the newly
computed ones via :func:`~repro.experiments.store.merge_sweeps`,
reproducing the paper artifact's "parallelize across machines,
aggregate the raw files afterwards" workflow (§A.7).

Redundant work is eliminated by two layers of process-local caches:

* **Analysis layer** (:mod:`repro.analysis.memo`): the exponential
  ground-truth enumeration is keyed on (parity-check matrix bytes,
  at-risk positions) — the positions depend only on (seed, error count),
  never on the probability, so each sampled word is enumerated exactly
  once per sweep instead of once per probability level.  HARP-A's
  indirect-prediction enumeration is memoized the same way, and the
  adaptive profilers' crafted-pattern solves and aliasing-pair tables
  are shared across every word of a cell that uses the same code.
* **Engine layer** (this module): word sampling is hoisted out of the
  probability loop (``_words_for``), and the per-word simulation inputs
  that repeat across cells — the standard pattern schedule, its encoding,
  and the Bernoulli failure draws — are computed once per word and passed
  to :func:`~repro.profiling.runner.simulate_word` as
  :class:`~repro.profiling.runner.WordArtifacts`.

Each worker process owns independent caches (no locks, no shared state);
a ``fork`` start inherits the parent's warm caches, a ``spawn`` start
begins cold, and both produce identical outputs.

Fairness (paper §7.1.2) is preserved exactly as before: ground truth is
shared by all profilers of a word, and failure draws flow from the word
seed alone, so every profiler sees the same ECC words, pre-correction
error patterns, and data patterns.

Per-cell wall-clock timings are collected in ``SweepResult.timings`` and
rendered by :func:`repro.experiments.reporting.timing_table`; the CLI
exposes both knobs as ``python -m repro fig6 --jobs 4 --timings``.

The execution core is exposed as :func:`execute_shards` so other
exhibits can ride the same pool: the Fig 10 case study decomposes into
:class:`repro.experiments.fig10.Fig10Shard` units and maps them through
it with identical determinism guarantees.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any

import numpy as np

from repro.analysis import shared_memo
from repro.analysis.atrisk import GroundTruth, max_simultaneous_post_errors
from repro.analysis.memo import _code_key, cached_ground_truth
from repro.experiments.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    resolve_backend,
)
from repro.ecc.hamming import random_sec_code
from repro.ecc.linear_code import SystematicCode
from repro.memory.error_model import WordErrorProfile, sample_word_profile
from repro.memory.patterns import make_pattern, pattern_is_seeded
from repro.profiling import PROFILER_REGISTRY
from repro.profiling.runner import (
    BatchedWordArtifacts,
    WordArtifacts,
    WordRunResult,
    batched_kernel_enabled,
    clear_charge_mask_cache,
    simulate_word,
    simulate_words_batched,
)
from repro.utils.rng import derive_rng, derive_seed

__all__ = [
    "WordMetrics",
    "SweepCell",
    "SweepResult",
    "SweepShard",
    "shard_grid",
    "run_shard",
    "run_sweep",
    "execute_shards",
    "metrics_for_run",
    "metrics_for_words",
    "clear_engine_caches",
]


@dataclass(frozen=True)
class WordMetrics:
    """Per-round metrics of one (profiler, word) simulation.

    All lists have one entry per profiling round (cumulative state *after*
    that round).
    """

    direct_total: int
    direct_identified: tuple[int, ...]
    indirect_total: int
    indirect_missed: tuple[int, ...]
    post_total: int
    post_identified: tuple[int, ...]
    #: Required secondary-ECC capability per round (Fig 9 metric).
    capability: tuple[int, ...]
    #: 1-based round of first direct-risk identification, censored to the
    #: simulated round count when no direct bit was ever identified (Fig 7).
    first_direct_round: int


@dataclass
class SweepCell:
    """All word metrics of one (error count, probability, profiler) cell."""

    error_count: int
    probability: float
    profiler: str
    words: list[WordMetrics]


@dataclass
class SweepResult:
    """Results of a full sweep, keyed by (error_count, probability, profiler).

    Attributes:
        config: the sweep configuration the cells were computed from.
        cells: per-cell word metrics.
        timings: per-cell wall-clock seconds as measured by whichever
            process executed the cell (empty for deserialized results).
        quarantined: cell keys a ``continue_past_quarantine`` run set
            aside instead of computing (empty everywhere else); the
            corresponding keys are absent from ``cells`` until a
            targeted re-run fills them in.
    """

    config: object
    cells: dict[tuple[int, float, str], SweepCell]
    timings: dict[tuple[int, float, str], float] = field(default_factory=dict)
    quarantined: tuple = ()

    def cell(self, error_count: int, probability: float, profiler: str) -> SweepCell:
        return self.cells[(error_count, probability, profiler)]

    def total_cell_seconds(self) -> float:
        """Sum of per-cell timings (CPU-side cost, excludes pool overhead)."""
        return sum(self.timings.values())


def metrics_for_run(
    run: WordRunResult,
    ground_truth: GroundTruth,
    num_rounds: int,
) -> WordMetrics:
    """Reduce a simulation trace to the compact per-word metrics record.

    The required-capability metric is recomputed only at rounds where the
    identified set actually grows (identification is monotonic), keeping
    the reduction linear in practice.

    This is the single-word reference reduction; the engine reduces all
    words of a cell at once through the bit-identical batched
    :func:`metrics_for_words`, whose numpy set-ops amortize across the
    cell.
    """
    direct = ground_truth.direct_at_risk
    indirect = ground_truth.indirect_at_risk
    post = ground_truth.post_correction_at_risk

    direct_identified: list[int] = []
    indirect_missed: list[int] = []
    post_identified: list[int] = []
    capability: list[int] = []
    first_direct = num_rounds
    previous: frozenset[int] | None = None
    previous_capability = 0
    for round_index, identified in enumerate(run.identified_per_round):
        if previous is None or identified != previous:
            missed = post - identified
            previous_capability = max_simultaneous_post_errors(ground_truth, missed)
            previous = identified
        direct_hits = len(identified & direct)
        direct_identified.append(direct_hits)
        indirect_missed.append(len(indirect - identified))
        post_identified.append(len(identified & post))
        capability.append(previous_capability)
        if direct_hits and first_direct == num_rounds:
            # Record the first round with a direct identification; a first
            # hit exactly at the censoring bound is indistinguishable from
            # (and recorded as) the censored value, matching the paper's
            # conservative Fig 7 plotting.
            first_direct = round_index + 1
    return WordMetrics(
        direct_total=len(direct),
        direct_identified=tuple(direct_identified),
        indirect_total=len(indirect),
        indirect_missed=tuple(indirect_missed),
        post_total=len(post),
        post_identified=tuple(post_identified),
        capability=tuple(capability),
        first_direct_round=first_direct,
    )


def metrics_for_words(
    runs: list[WordRunResult],
    ground_truths: list[GroundTruth],
    num_rounds: int,
) -> list[WordMetrics]:
    """Batched :func:`metrics_for_run` over every word of a cell.

    Identification is monotonic, so each trace collapses into segments
    of identical identified sets; the per-round set intersections that
    the reference loop evaluates 4x per round become numpy set-ops over
    the *whole cell*: every metric member's first-seen segment lands in
    one global ``bincount``/``cumsum`` (counting, per segment, how many
    of the word's at-risk positions are identified so far), and the
    per-segment counts expand back to per-round series with one
    ``repeat`` per metric.  The exponential required-capability metric
    is evaluated once per segment, exactly as often as the reference.
    Outputs are bit-identical to ``[metrics_for_run(r, t, num_rounds)
    for r, t in zip(runs, ground_truths)]`` — property-tested, and the
    speedup is pinned in ``benchmarks/bench_engine.py``.
    """
    words = list(zip(runs, ground_truths))
    if not words:
        return []
    seg_starts_per_word: list[list[int]] = []
    segs_per_word: list[int] = []
    trace_lengths: list[int] = []
    seg_end_parts: list[int] = []  # each word's starts[1:] + trace length
    first_seen_direct: list[int] = []  # global segment index per member, -1 = never
    first_seen_indirect: list[int] = []
    first_seen_post: list[int] = []
    indirect_totals: list[int] = []
    capability_parts: list[int] = []
    base = 0
    for run, truth in words:
        trace = run.identified_per_round
        starts = [0] if len(trace) else []
        if starts:
            previous_set = trace[0]
            for round_index in range(1, len(trace)):
                identified = trace[round_index]
                if identified is not previous_set and identified != previous_set:
                    starts.append(round_index)
                    previous_set = identified
        segment_sets = [trace[index] for index in starts]
        seg_starts_per_word.append(starts)
        segs_per_word.append(len(starts))
        trace_lengths.append(len(trace))
        if starts:
            seg_end_parts.extend(starts[1:])
            seg_end_parts.append(len(trace))
        post = truth.post_correction_at_risk
        first_seen: dict[int, int] = {}
        previous: frozenset[int] = frozenset()
        for segment_index, identified in enumerate(segment_sets):
            for position in identified - previous:
                first_seen[position] = segment_index
            previous = identified
            capability_parts.append(max_simultaneous_post_errors(truth, post - identified))
        get = first_seen.get
        first_seen_direct.extend(
            base + local if local >= 0 else -1
            for local in (get(p, -1) for p in truth.direct_at_risk)
        )
        first_seen_indirect.extend(
            base + local if local >= 0 else -1
            for local in (get(p, -1) for p in truth.indirect_at_risk)
        )
        first_seen_post.extend(
            base + local if local >= 0 else -1 for local in (get(p, -1) for p in post)
        )
        indirect_totals.append(len(truth.indirect_at_risk))
        base += len(starts)

    total_segments = base
    segs = np.asarray(segs_per_word, dtype=np.int64)
    word_base = np.concatenate(([0], np.cumsum(segs)[:-1]))
    starts_flat = np.asarray(
        [start for starts in seg_starts_per_word for start in starts], dtype=np.int64
    )
    seg_lengths = np.asarray(seg_end_parts, dtype=np.int64) - starts_flat

    def segment_counts(first_seen_global: list[int]) -> Any:
        """Per-segment identified-member counts, all words at once.

        ``cumsum(bincount(first seen))`` counts, for every global
        segment, the members first identified at or before it; each
        word's own counts are that running total minus the total at the
        word's base segment.
        """
        seen = np.asarray(first_seen_global, dtype=np.int64)
        seen = seen[seen >= 0]
        running = np.cumsum(np.bincount(seen, minlength=total_segments))
        if not total_segments:
            return running
        preceding = np.concatenate(([0], running))[word_base]
        return running - np.repeat(preceding, segs)

    direct_segment = segment_counts(first_seen_direct)
    indirect_segment = np.repeat(
        np.asarray(indirect_totals, dtype=np.int64), segs
    ) - segment_counts(first_seen_indirect)
    post_segment = segment_counts(first_seen_post)
    capability_segment = np.asarray(capability_parts, dtype=np.int64)

    boundaries = np.cumsum(trace_lengths)[:-1]
    direct_rounds = np.split(np.repeat(direct_segment, seg_lengths), boundaries)
    indirect_rounds = np.split(np.repeat(indirect_segment, seg_lengths), boundaries)
    post_rounds = np.split(np.repeat(post_segment, seg_lengths), boundaries)
    capability_rounds = np.split(np.repeat(capability_segment, seg_lengths), boundaries)

    metrics: list[WordMetrics] = []
    cursor = 0
    for word_index, (run, truth) in enumerate(words):
        count = segs_per_word[word_index]
        hit_segments = np.flatnonzero(direct_segment[cursor : cursor + count])
        first_direct = (
            seg_starts_per_word[word_index][int(hit_segments[0])] + 1
            if hit_segments.size
            else num_rounds
        )
        metrics.append(
            WordMetrics(
                direct_total=len(truth.direct_at_risk),
                direct_identified=tuple(direct_rounds[word_index].tolist()),
                indirect_total=len(truth.indirect_at_risk),
                indirect_missed=tuple(indirect_rounds[word_index].tolist()),
                post_total=len(truth.post_correction_at_risk),
                post_identified=tuple(post_rounds[word_index].tolist()),
                capability=tuple(capability_rounds[word_index].tolist()),
                first_direct_round=first_direct,
            )
        )
        cursor += count
    return metrics


# ----------------------------------------------------------------------
# Process-local engine caches
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _WordContext:
    """Probability-independent state of one sampled ECC word."""

    code: SystematicCode
    positions: tuple[int, ...]
    ground_truth: GroundTruth
    word_seed: int


@lru_cache(maxsize=512)
def _code_for(seed: int, k: int, code_index: int) -> SystematicCode:
    """The sweep's ``code_index``-th random SEC code (cached per process)."""
    return random_sec_code(k, derive_rng(seed, "code", k, code_index))


def _sample_words(config, error_count: int) -> tuple[_WordContext, ...]:
    """Sample the word contexts of one error count (uncached core).

    Word sampling depends only on (seed, error count) so that every
    probability level and every profiler sees the exact same codes and
    at-risk positions — the probability only rescales the failure draws.
    Ground truth goes through the analysis-layer memo, so each distinct
    (code, positions) pair is enumerated once per process per sweep.
    """
    words = []
    for code_index in range(config.num_codes):
        code = _code_for(config.seed, config.k, code_index)
        for word_index in range(config.words_per_code):
            word_rng = derive_rng(config.seed, "word", error_count, code_index, word_index)
            template = sample_word_profile(code, error_count, 1.0, word_rng)
            ground_truth = cached_ground_truth(code, template.positions)
            word_seed = derive_seed(config.seed, "draws", error_count, code_index, word_index)
            words.append(_WordContext(code, template.positions, ground_truth, word_seed))
    return tuple(words)


@lru_cache(maxsize=64)
def _words_for(config, error_count: int) -> tuple[_WordContext, ...]:
    """Word contexts of one error count, hoisted out of the probability loop.

    Cached on the config — which must therefore be hashable, as the frozen
    :class:`~repro.experiments.config.SweepConfig` is — so a sweep samples
    each (error_count, code, word) tuple exactly once per process.  A
    shared-cache worker resolves the whole tuple (ground truths included)
    from the parent's published overlay instead of re-sampling.
    """
    shared = shared_memo.overlay_lookup(("swords", config, error_count))
    if shared is not shared_memo.MISS:
        return shared
    return _sample_words(config, error_count)


def _readonly(array):
    array.setflags(write=False)
    return array


@lru_cache(maxsize=4096)
def _schedule_for(pattern: str, seed: int, k: int, num_rounds: int) -> Any:
    """Materialized standard pattern schedule, shared across a word's cells."""
    shared = shared_memo.overlay_lookup(("sched", pattern, seed, k, num_rounds))
    if shared is not shared_memo.MISS:
        return shared
    return _readonly(make_pattern(pattern, seed).rounds(num_rounds, k))


@lru_cache(maxsize=4096)
def _encoded_schedule_for(
    code: SystematicCode, pattern: str, seed: int, num_rounds: int
) -> Any:
    """Encoding of the standard schedule under ``code``."""
    shared = shared_memo.overlay_lookup(("enc", _code_key(code), pattern, seed, num_rounds))
    if shared is not shared_memo.MISS:
        return shared
    return _readonly(code.encode(_schedule_for(pattern, seed, code.k, num_rounds)))


@lru_cache(maxsize=4096)
def _draws_for(word_seed: int, num_rounds: int, count: int) -> Any:
    """The word's Bernoulli failure draws (identical across cells).

    Shared-cache workers map these — the largest per-word arrays — as
    read-only zero-copy views over the parent's published block.
    """
    shared = shared_memo.overlay_lookup(("draws", word_seed, num_rounds, count))
    if shared is not shared_memo.MISS:
        return shared
    rng = derive_rng(word_seed, "failure-draws")
    return _readonly(rng.random((num_rounds, count)))


def _build_batch_stacks(config, error_count: int) -> BatchedWordArtifacts | None:
    """Stack one error count's batched-kernel inputs (uncached core).

    Encodes every code's schedules in one ``(words x rounds, k)`` GF(2)
    product and lays the results out as dense ``(words, rounds, ...)``
    arrays, so each (probability, profiler) cell of the error count
    slices zero-copy views instead of restacking per-word artifacts.
    Returns ``None`` for a non-uniform word population (mixed codeword
    length or at-risk count) — the batched kernel then stacks per group
    from the per-word artifacts, and the scalar path is unaffected.
    """
    words = _words_for(config, error_count)
    if not words:
        return None
    n = words[0].code.n
    at_risk = len(words[0].positions)
    if not at_risk or any(
        ctx.code.n != n or len(ctx.positions) != at_risk for ctx in words
    ):
        return None
    num_rounds = config.num_rounds
    codewords = np.empty((len(words), num_rounds, n), dtype=np.uint8)
    draws = np.empty((len(words), num_rounds, at_risk), dtype=np.float64)
    positions = np.empty((len(words), at_risk), dtype=np.intp)
    by_code: dict[int, tuple[SystematicCode, list[int]]] = {}
    for index, ctx in enumerate(words):
        draws[index] = _draws_for(ctx.word_seed, num_rounds, at_risk)
        positions[index] = ctx.positions
        entry = by_code.get(id(ctx.code))
        if entry is None:
            entry = by_code[id(ctx.code)] = (ctx.code, [])
        entry[1].append(index)
    for code, indices in by_code.values():
        schedules = [
            _schedule_for(
                config.pattern,
                words[i].word_seed if pattern_is_seeded(config.pattern) else 0,
                code.k,
                num_rounds,
            )
            for i in indices
        ]
        encoded = code.encode(np.concatenate(schedules, axis=0))
        codewords[indices] = encoded.reshape(len(indices), num_rounds, n)
    return BatchedWordArtifacts(
        codewords=_readonly(codewords),
        draws=_readonly(draws),
        positions=_readonly(positions),
    )


@lru_cache(maxsize=64)
def _batch_stacks_for(config, error_count: int) -> BatchedWordArtifacts | None:
    """Pre-stacked batched-kernel inputs of one error count.

    Cached per process and shared by every (probability, profiler) cell
    of the error count; a shared-cache worker assembles the container
    from the parent's published zero-copy array views instead of
    restacking (the largest arrays of the overlay, published once per
    sweep under ``("bstack", ...)`` keys).
    """
    stacked_codewords = shared_memo.overlay_lookup(("bstack", config, error_count, "codewords"))
    if stacked_codewords is not shared_memo.MISS:
        stacked_draws = shared_memo.overlay_lookup(("bstack", config, error_count, "draws"))
        stacked_positions = shared_memo.overlay_lookup(("bstack", config, error_count, "positions"))
        if stacked_draws is not shared_memo.MISS and stacked_positions is not shared_memo.MISS:
            return BatchedWordArtifacts(
                codewords=stacked_codewords,
                draws=stacked_draws,
                positions=stacked_positions,
            )
    return _build_batch_stacks(config, error_count)


def _artifacts_for(ctx: _WordContext, config) -> WordArtifacts:
    """Assemble the per-word precomputed inputs for ``simulate_word``.

    Static patterns (charged/zero/checkered) produce the same schedule
    for every seed, so their cache key collapses to one entry per
    (pattern, k, rounds) instead of one per word.
    """
    schedule_seed = ctx.word_seed if pattern_is_seeded(config.pattern) else 0
    return WordArtifacts(
        schedule=_schedule_for(config.pattern, schedule_seed, ctx.code.k, config.num_rounds),
        codewords=_encoded_schedule_for(
            ctx.code, config.pattern, schedule_seed, config.num_rounds
        ),
        draws=_draws_for(ctx.word_seed, config.num_rounds, len(ctx.positions)),
    )


def clear_engine_caches() -> None:
    """Empty the engine-layer caches (tests and benchmarks only).

    Does not touch the analysis-layer caches; see
    :func:`repro.analysis.memo.clear_analysis_caches` for those.
    """
    _code_for.cache_clear()
    _words_for.cache_clear()
    _schedule_for.cache_clear()
    _encoded_schedule_for.cache_clear()
    _draws_for.cache_clear()
    _batch_stacks_for.cache_clear()
    clear_charge_mask_cache()


# ----------------------------------------------------------------------
# Work units and execution
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepShard:
    """One self-contained, picklable unit of sweep work (a single cell).

    A shard carries everything needed to recompute its cell from scratch:
    the full config plus the cell coordinates.  Execution is a pure
    function of the shard, so shards may run in any process, in any
    order, with bit-identical results.
    """

    config: Any
    error_count: int
    probability: float
    profiler: str

    @property
    def key(self) -> tuple[int, float, str]:
        return (self.error_count, self.probability, self.profiler)


def shard_grid(config) -> list[SweepShard]:
    """Decompose a sweep config into its cell shards, in grid order.

    The error count varies slowest, so contiguous chunks handed to one
    worker share their sampled words and ground truths via the
    process-local caches.
    """
    return [
        SweepShard(config=config, error_count=error_count, probability=probability, profiler=name)
        for error_count in config.error_counts
        for probability in config.probabilities
        for name in config.profilers
    ]


#: Words reduced per :func:`metrics_for_words` call inside a shard: large
#: enough to amortize the numpy set-ops, small enough that a PAPER-scale
#: cell (2500 words) never holds every simulation trace at once.
_METRICS_BATCH = 256


def run_shard(shard: SweepShard) -> tuple[SweepCell, float]:
    """Execute one cell shard, returning its cell and wall-clock seconds.

    Words simulate and reduce in :data:`_METRICS_BATCH`-sized groups so a
    worker's peak memory holds one group's traces, not the whole cell's.
    Non-adaptive cells whose profiler declares the ``observe_many``
    contract dispatch each group to the cell-batched kernel
    (:func:`~repro.profiling.runner.simulate_words_batched`) over
    zero-copy slices of the error count's pre-stacked inputs; adaptive
    cells — and runs forced scalar via ``REPRO_SIM_KERNEL=scalar`` —
    take the per-word reference path.  Both are bit-identical.
    """
    started = time.perf_counter()
    config = shard.config
    words = _words_for(config, shard.error_count)
    profiler_cls = PROFILER_REGISTRY[shard.profiler]
    use_batched = (
        not profiler_cls.adaptive and profiler_cls.batched and batched_kernel_enabled()
    )
    stacks = _batch_stacks_for(config, shard.error_count) if use_batched else None
    metrics: list[WordMetrics] = []
    for start in range(0, len(words), _METRICS_BATCH):
        group = words[start : start + _METRICS_BATCH]
        profiles = [
            WordErrorProfile(ctx.positions, tuple(shard.probability for _ in ctx.positions))
            for ctx in group
        ]
        if use_batched:
            profilers = [
                profiler_cls(ctx.code, seed=ctx.word_seed, pattern=config.pattern)
                for ctx in group
            ]
            group_stacks = None
            if stacks is not None:
                stop = start + len(group)
                group_stacks = BatchedWordArtifacts(
                    codewords=stacks.codewords[start:stop],
                    draws=stacks.draws[start:stop],
                    positions=stacks.positions[start:stop],
                )
            runs = simulate_words_batched(
                profilers,
                profiles,
                config.num_rounds,
                [ctx.word_seed for ctx in group],
                artifacts=(
                    None
                    if group_stacks is not None
                    else [_artifacts_for(ctx, config) for ctx in group]
                ),
                batch_artifacts=group_stacks,
            )
        else:
            runs = []
            for ctx, profile in zip(group, profiles):
                profiler = profiler_cls(ctx.code, seed=ctx.word_seed, pattern=config.pattern)
                runs.append(
                    simulate_word(
                        profiler,
                        profile,
                        config.num_rounds,
                        ctx.word_seed,
                        artifacts=_artifacts_for(ctx, config),
                    )
                )
        metrics.extend(
            metrics_for_words(runs, [ctx.ground_truth for ctx in group], config.num_rounds)
        )
    cell = SweepCell(
        error_count=shard.error_count,
        probability=shard.probability,
        profiler=shard.profiler,
        words=metrics,
    )
    return cell, time.perf_counter() - started


def execute_shards(
    worker,
    shards,
    jobs: int | None = None,
    chunksize: int = 1,
    backend: ExecutionBackend | str | None = None,
) -> list:
    """Map ``worker`` over picklable shards on a pluggable backend.

    The generic execution core shared by :func:`run_sweep` and the Fig 10
    case-study runner: ``worker`` must be a module-level (picklable) pure
    function of one shard.  Results come back in shard order, and because
    every shard re-derives its state from seeds alone, the output is
    bit-identical for every backend and ``jobs`` setting.  ``chunksize``
    groups contiguous shards onto one worker so shards sharing
    per-process cache state (same code, same words) stay together.

    ``backend`` accepts an :class:`~repro.experiments.backends.ExecutionBackend`
    instance or a spec string (``serial``, ``process``, ``socket``,
    ``socket://HOST:PORT``); when omitted, ``jobs`` picks between the
    serial and process-pool backends exactly as before.
    """
    return resolve_backend(backend, jobs).map(worker, shards, chunksize=chunksize)


def _sweep_chunksize(config, num_shards: int, worker_count: int) -> int:
    """Chunk size aligning pool chunks to whole error-count blocks.

    Grid order is error-count-major, so a block's word sampling and
    exponential ground-truth enumeration stay on one worker; when there
    are fewer blocks than workers, each block splits as evenly as
    possible instead of starving the pool.
    """
    blocks = max(1, len(config.error_counts))
    block_size = max(1, num_shards // blocks)
    if blocks >= worker_count:
        return block_size
    splits_per_block = -(-worker_count // blocks)  # ceil division
    return max(1, block_size // splits_per_block)


def run_sweep(
    config,
    jobs: int | None = None,
    backend: ExecutionBackend | str | None = None,
    resume: str | None = None,
    progress: bool | float = False,
    shared_cache: bool = False,
) -> SweepResult:
    """Execute the full (error count x probability x profiler) grid.

    Args:
        config: a :class:`~repro.experiments.config.SweepConfig` (or any
            compatible object; it must be hashable — and picklable for
            any multi-process backend — because word sampling is cached
            per config).
        jobs: worker processes.  ``None``/``1`` runs serially in-process;
            ``N > 1`` uses a pool of ``N``; ``0`` uses one per CPU.  The
            result is bit-identical for every setting.
        backend: execution backend instance or spec string (``serial``,
            ``process``, ``socket``, ``socket://HOST:PORT``); ``None``
            infers serial/process-pool from ``jobs``.  Bit-identical
            across all backends.
        resume: path to a :class:`~repro.experiments.store.ShardStore`
            JSONL file.  Completed cells stream to it as they finish,
            already-persisted cells are skipped on restart, and the
            returned result merges stored and fresh cells — equal to an
            uninterrupted run, cell for cell.
        progress: print periodic grid-coverage/ETA lines to stderr via
            :class:`~repro.experiments.monitor.ProgressReporter` as
            cells complete (``True`` = default cadence, a float = that
            many seconds between lines).  Purely observational: results
            are byte-identical with it on or off.
        shared_cache: precompute the sweep's per-code artifacts (word
            contexts with ground truths, schedules, failure draws,
            aliasing tables) once in this process and publish them
            through :mod:`repro.analysis.shared_memo` before the map
            starts.  Process-pool workers attach the shared block (fork
            children inherit the warm overlay outright) instead of
            re-deriving each other's solves; the block is destroyed when
            the map drains.  Bit-identical on or off; serial runs simply
            start warm, and socket workers (possibly on other machines)
            ignore it.

    A backend running in continue-past-quarantine mode may set shards
    aside instead of executing them; their keys come back on
    ``SweepResult.quarantined`` (and as ``quarantine`` records in the
    ``resume`` store) so a targeted re-run of the same command can
    compute exactly the missing cells.
    """
    from repro.experiments.store import ShardStore, config_to_dict, merge_sweeps

    if resume is not None and config_to_dict(config) is None:
        raise ValueError(
            "resume requires the library SweepConfig: an opaque config "
            "cannot be verified against the store, so stale cells from a "
            "different experiment could silently leak into the result"
        )
    shards = shard_grid(config)
    # Resolve (and validate) the backend before any store side effects:
    # a bad spec must not leave a header-only store file behind.
    executor = resolve_backend(backend, jobs)
    shared_block = None
    if shared_cache:
        # Publish BEFORE the pool exists: ProcessPoolBackend creates its
        # executor inside the map call, so fork children inherit the
        # warm overlay and spawn children attach via the initializer.
        shared_block = shared_memo.publish_sweep_artifacts(config)
        if isinstance(executor, ProcessPoolBackend) and executor.jobs > 1:
            executor = ProcessPoolBackend(
                executor.jobs,
                initializer=shared_memo.attach_worker,
                initargs=(shared_block.name,),
            )
    store: ShardStore | None = None
    persisted = SweepResult(config=None, cells={}, timings={})
    if resume is not None:
        store = ShardStore(resume)
        persisted = store.load()
        if persisted.cells and persisted.config is None:
            raise ValueError(
                f"{resume} holds cells but does not record the sweep config "
                "that produced them; refusing to reuse cells that cannot be "
                "verified (use a fresh --resume path)"
            )
        if persisted.config is not None and persisted.config != config:
            raise ValueError(
                f"{resume} was written by a different sweep config; "
                "refusing to mix results (use a fresh --resume path)"
            )
        store.open(config)
    from repro.experiments.monitor import progress_reporter, quarantined_keys

    pending = [shard for shard in shards if shard.key not in persisted.cells]
    reporter = progress_reporter(progress, len(shards), "cells")
    if reporter is not None:
        reporter.start(
            done=len(persisted.cells),
            cell_seconds=sum(persisted.timings.values()),
        )

    # Chunk size derives from the *full* grid even when resuming.  On a
    # fresh run the chunks then align to whole error-count blocks,
    # keeping a block's word sampling and ground-truth enumeration on
    # one worker; on a resume the holes left by persisted cells can
    # shift boundaries so a chunk straddles two blocks — a bounded,
    # accepted cost, since long-lived workers memoize each block they
    # touch via the process-local ``_words_for`` cache anyway.
    chunksize = _sweep_chunksize(config, len(shards), executor.worker_hint())
    cells: dict[tuple[int, float, str], SweepCell] = {}
    timings: dict[tuple[int, float, str], float] = {}
    quarantined: tuple = ()
    try:
        # Completion order, not shard order: every finished cell becomes
        # durable the moment any worker delivers it, so a crash loses at
        # most the chunks still in flight — never completed stragglers
        # held back behind a slow ordered prefix.
        for index, (cell, elapsed) in executor.imap_unordered(
            run_shard, pending, chunksize=chunksize
        ):
            key = pending[index].key
            cells[key] = cell
            timings[key] = elapsed
            if store is not None:
                store.append(cell, elapsed)
            if reporter is not None:
                reporter.completed(elapsed)
        quarantined = quarantined_keys(
            executor, pending, lambda shard: shard.key, store=store
        )
        if reporter is not None:
            reporter.finish(quarantined=len(quarantined))
    finally:
        if store is not None:
            store.close()
        if shared_block is not None:
            # The pool has drained (or died) by the time the map loop
            # exits; attached workers keep their mapping, new attaches
            # must fail — the block's lifetime is exactly this map.
            shared_block.destroy()
    fresh = SweepResult(config=config, cells=cells, timings=timings)
    merged = merge_sweeps([persisted, fresh]) if persisted.cells else fresh
    # Restore grid order (cells arrive in completion order, resumed ones
    # first) so the result is indistinguishable from a serial run.
    ordered = {shard.key: merged.cells[shard.key] for shard in shards if shard.key in merged.cells}
    return SweepResult(
        config=config, cells=ordered, timings=merged.timings, quarantined=quarantined
    )
