"""Parallel, cache-aware Monte-Carlo sweep engine for the profiler exhibits.

Executes every (pre-correction error count, per-bit probability, profiler)
cell of a :class:`~repro.experiments.config.SweepConfig` and reduces each
simulated word to the compact :class:`WordMetrics` record that Figs 6-9
consume.

Architecture
============

The grid decomposes into self-contained, picklable work units — one
:class:`SweepShard` per cell — executed either in-process (``jobs=1``) or
across a ``concurrent.futures.ProcessPoolExecutor`` (``jobs>1``, or
``jobs=0`` for one worker per CPU).  Every quantity a shard needs is
re-derived from the experiment seed through the
:func:`~repro.utils.rng.derive_seed` key-path scheme, so results are
bit-identical regardless of worker count, scheduling order, or start
method; ``run_sweep(config, jobs=N)`` equals ``run_sweep(config)`` cell
for cell.

Redundant work is eliminated by two layers of process-local caches:

* **Analysis layer** (:mod:`repro.analysis.memo`): the exponential
  ground-truth enumeration is keyed on (parity-check matrix bytes,
  at-risk positions) — the positions depend only on (seed, error count),
  never on the probability, so each sampled word is enumerated exactly
  once per sweep instead of once per probability level.  HARP-A's
  indirect-prediction enumeration is memoized the same way, and the
  adaptive profilers' crafted-pattern solves and aliasing-pair tables
  are shared across every word of a cell that uses the same code.
* **Engine layer** (this module): word sampling is hoisted out of the
  probability loop (``_words_for``), and the per-word simulation inputs
  that repeat across cells — the standard pattern schedule, its encoding,
  and the Bernoulli failure draws — are computed once per word and passed
  to :func:`~repro.profiling.runner.simulate_word` as
  :class:`~repro.profiling.runner.WordArtifacts`.

Each worker process owns independent caches (no locks, no shared state);
a ``fork`` start inherits the parent's warm caches, a ``spawn`` start
begins cold, and both produce identical outputs.

Fairness (paper §7.1.2) is preserved exactly as before: ground truth is
shared by all profilers of a word, and failure draws flow from the word
seed alone, so every profiler sees the same ECC words, pre-correction
error patterns, and data patterns.

Per-cell wall-clock timings are collected in ``SweepResult.timings`` and
rendered by :func:`repro.experiments.reporting.timing_table`; the CLI
exposes both knobs as ``python -m repro fig6 --jobs 4 --timings``.

The execution core is exposed as :func:`execute_shards` so other
exhibits can ride the same pool: the Fig 10 case study decomposes into
:class:`repro.experiments.fig10.Fig10Shard` units and maps them through
it with identical determinism guarantees.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any

from repro.analysis.atrisk import GroundTruth, max_simultaneous_post_errors
from repro.analysis.memo import cached_ground_truth
from repro.ecc.hamming import random_sec_code
from repro.ecc.linear_code import SystematicCode
from repro.memory.error_model import WordErrorProfile, sample_word_profile
from repro.memory.patterns import make_pattern, pattern_is_seeded
from repro.profiling import PROFILER_REGISTRY
from repro.profiling.runner import (
    WordArtifacts,
    WordRunResult,
    clear_charge_mask_cache,
    simulate_word,
)
from repro.utils.rng import derive_rng, derive_seed

__all__ = [
    "WordMetrics",
    "SweepCell",
    "SweepResult",
    "SweepShard",
    "shard_grid",
    "run_shard",
    "run_sweep",
    "execute_shards",
    "metrics_for_run",
    "clear_engine_caches",
]


@dataclass(frozen=True)
class WordMetrics:
    """Per-round metrics of one (profiler, word) simulation.

    All lists have one entry per profiling round (cumulative state *after*
    that round).
    """

    direct_total: int
    direct_identified: tuple[int, ...]
    indirect_total: int
    indirect_missed: tuple[int, ...]
    post_total: int
    post_identified: tuple[int, ...]
    #: Required secondary-ECC capability per round (Fig 9 metric).
    capability: tuple[int, ...]
    #: 1-based round of first direct-risk identification, censored to the
    #: simulated round count when no direct bit was ever identified (Fig 7).
    first_direct_round: int


@dataclass
class SweepCell:
    """All word metrics of one (error count, probability, profiler) cell."""

    error_count: int
    probability: float
    profiler: str
    words: list[WordMetrics]


@dataclass
class SweepResult:
    """Results of a full sweep, keyed by (error_count, probability, profiler).

    Attributes:
        config: the sweep configuration the cells were computed from.
        cells: per-cell word metrics.
        timings: per-cell wall-clock seconds as measured by whichever
            process executed the cell (empty for deserialized results).
    """

    config: object
    cells: dict[tuple[int, float, str], SweepCell]
    timings: dict[tuple[int, float, str], float] = field(default_factory=dict)

    def cell(self, error_count: int, probability: float, profiler: str) -> SweepCell:
        return self.cells[(error_count, probability, profiler)]

    def total_cell_seconds(self) -> float:
        """Sum of per-cell timings (CPU-side cost, excludes pool overhead)."""
        return sum(self.timings.values())


def metrics_for_run(
    run: WordRunResult,
    ground_truth: GroundTruth,
    num_rounds: int,
) -> WordMetrics:
    """Reduce a simulation trace to the compact per-word metrics record.

    The required-capability metric is recomputed only at rounds where the
    identified set actually grows (identification is monotonic), keeping
    the reduction linear in practice.
    """
    direct = ground_truth.direct_at_risk
    indirect = ground_truth.indirect_at_risk
    post = ground_truth.post_correction_at_risk

    direct_identified: list[int] = []
    indirect_missed: list[int] = []
    post_identified: list[int] = []
    capability: list[int] = []
    first_direct = num_rounds
    previous: frozenset[int] | None = None
    previous_capability = 0
    for round_index, identified in enumerate(run.identified_per_round):
        if previous is None or identified != previous:
            missed = post - identified
            previous_capability = max_simultaneous_post_errors(ground_truth, missed)
            previous = identified
        direct_hits = len(identified & direct)
        direct_identified.append(direct_hits)
        indirect_missed.append(len(indirect - identified))
        post_identified.append(len(identified & post))
        capability.append(previous_capability)
        if direct_hits and first_direct == num_rounds:
            # Record the first round with a direct identification; a first
            # hit exactly at the censoring bound is indistinguishable from
            # (and recorded as) the censored value, matching the paper's
            # conservative Fig 7 plotting.
            first_direct = round_index + 1
    return WordMetrics(
        direct_total=len(direct),
        direct_identified=tuple(direct_identified),
        indirect_total=len(indirect),
        indirect_missed=tuple(indirect_missed),
        post_total=len(post),
        post_identified=tuple(post_identified),
        capability=tuple(capability),
        first_direct_round=first_direct,
    )


# ----------------------------------------------------------------------
# Process-local engine caches
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _WordContext:
    """Probability-independent state of one sampled ECC word."""

    code: SystematicCode
    positions: tuple[int, ...]
    ground_truth: GroundTruth
    word_seed: int


@lru_cache(maxsize=512)
def _code_for(seed: int, k: int, code_index: int) -> SystematicCode:
    """The sweep's ``code_index``-th random SEC code (cached per process)."""
    return random_sec_code(k, derive_rng(seed, "code", k, code_index))


def _sample_words(config, error_count: int) -> tuple[_WordContext, ...]:
    """Sample the word contexts of one error count (uncached core).

    Word sampling depends only on (seed, error count) so that every
    probability level and every profiler sees the exact same codes and
    at-risk positions — the probability only rescales the failure draws.
    Ground truth goes through the analysis-layer memo, so each distinct
    (code, positions) pair is enumerated once per process per sweep.
    """
    words = []
    for code_index in range(config.num_codes):
        code = _code_for(config.seed, config.k, code_index)
        for word_index in range(config.words_per_code):
            word_rng = derive_rng(config.seed, "word", error_count, code_index, word_index)
            template = sample_word_profile(code, error_count, 1.0, word_rng)
            ground_truth = cached_ground_truth(code, template.positions)
            word_seed = derive_seed(config.seed, "draws", error_count, code_index, word_index)
            words.append(_WordContext(code, template.positions, ground_truth, word_seed))
    return tuple(words)


@lru_cache(maxsize=64)
def _words_for(config, error_count: int) -> tuple[_WordContext, ...]:
    """Word contexts of one error count, hoisted out of the probability loop.

    Cached on the config — which must therefore be hashable, as the frozen
    :class:`~repro.experiments.config.SweepConfig` is — so a sweep samples
    each (error_count, code, word) tuple exactly once per process.
    """
    return _sample_words(config, error_count)


def _readonly(array):
    array.setflags(write=False)
    return array


@lru_cache(maxsize=4096)
def _schedule_for(pattern: str, seed: int, k: int, num_rounds: int) -> Any:
    """Materialized standard pattern schedule, shared across a word's cells."""
    return _readonly(make_pattern(pattern, seed).rounds(num_rounds, k))


@lru_cache(maxsize=4096)
def _encoded_schedule_for(
    code: SystematicCode, pattern: str, seed: int, num_rounds: int
) -> Any:
    """Encoding of the standard schedule under ``code``."""
    return _readonly(code.encode(_schedule_for(pattern, seed, code.k, num_rounds)))


@lru_cache(maxsize=4096)
def _draws_for(word_seed: int, num_rounds: int, count: int) -> Any:
    """The word's Bernoulli failure draws (identical across cells)."""
    rng = derive_rng(word_seed, "failure-draws")
    return _readonly(rng.random((num_rounds, count)))


def _artifacts_for(ctx: _WordContext, config) -> WordArtifacts:
    """Assemble the per-word precomputed inputs for ``simulate_word``.

    Static patterns (charged/zero/checkered) produce the same schedule
    for every seed, so their cache key collapses to one entry per
    (pattern, k, rounds) instead of one per word.
    """
    schedule_seed = ctx.word_seed if pattern_is_seeded(config.pattern) else 0
    return WordArtifacts(
        schedule=_schedule_for(config.pattern, schedule_seed, ctx.code.k, config.num_rounds),
        codewords=_encoded_schedule_for(
            ctx.code, config.pattern, schedule_seed, config.num_rounds
        ),
        draws=_draws_for(ctx.word_seed, config.num_rounds, len(ctx.positions)),
    )


def clear_engine_caches() -> None:
    """Empty the engine-layer caches (tests and benchmarks only).

    Does not touch the analysis-layer caches; see
    :func:`repro.analysis.memo.clear_analysis_caches` for those.
    """
    _code_for.cache_clear()
    _words_for.cache_clear()
    _schedule_for.cache_clear()
    _encoded_schedule_for.cache_clear()
    _draws_for.cache_clear()
    clear_charge_mask_cache()


# ----------------------------------------------------------------------
# Work units and execution
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepShard:
    """One self-contained, picklable unit of sweep work (a single cell).

    A shard carries everything needed to recompute its cell from scratch:
    the full config plus the cell coordinates.  Execution is a pure
    function of the shard, so shards may run in any process, in any
    order, with bit-identical results.
    """

    config: Any
    error_count: int
    probability: float
    profiler: str

    @property
    def key(self) -> tuple[int, float, str]:
        return (self.error_count, self.probability, self.profiler)


def shard_grid(config) -> list[SweepShard]:
    """Decompose a sweep config into its cell shards, in grid order.

    The error count varies slowest, so contiguous chunks handed to one
    worker share their sampled words and ground truths via the
    process-local caches.
    """
    return [
        SweepShard(config=config, error_count=error_count, probability=probability, profiler=name)
        for error_count in config.error_counts
        for probability in config.probabilities
        for name in config.profilers
    ]


def run_shard(shard: SweepShard) -> tuple[SweepCell, float]:
    """Execute one cell shard, returning its cell and wall-clock seconds."""
    started = time.perf_counter()
    config = shard.config
    words = _words_for(config, shard.error_count)
    profiler_cls = PROFILER_REGISTRY[shard.profiler]
    metrics: list[WordMetrics] = []
    for ctx in words:
        profile = WordErrorProfile(
            ctx.positions, tuple(shard.probability for _ in ctx.positions)
        )
        profiler = profiler_cls(ctx.code, seed=ctx.word_seed, pattern=config.pattern)
        run = simulate_word(
            profiler,
            profile,
            config.num_rounds,
            ctx.word_seed,
            artifacts=_artifacts_for(ctx, config),
        )
        metrics.append(metrics_for_run(run, ctx.ground_truth, config.num_rounds))
    cell = SweepCell(
        error_count=shard.error_count,
        probability=shard.probability,
        profiler=shard.profiler,
        words=metrics,
    )
    return cell, time.perf_counter() - started


def _resolve_jobs(jobs: int | None) -> int:
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def execute_shards(worker, shards, jobs: int | None = None, chunksize: int = 1) -> list:
    """Map ``worker`` over picklable shards, serially or across a pool.

    The generic execution core shared by :func:`run_sweep` and the Fig 10
    case-study runner: ``worker`` must be a module-level (picklable) pure
    function of one shard.  Results come back in shard order, and because
    every shard re-derives its state from seeds alone, the output is
    bit-identical for every ``jobs`` setting.  ``chunksize`` groups
    contiguous shards onto one worker so shards sharing per-process cache
    state (same code, same words) stay together.
    """
    worker_count = _resolve_jobs(jobs)
    if worker_count > 1 and len(shards) > 1:
        with ProcessPoolExecutor(max_workers=worker_count) as pool:
            return list(pool.map(worker, shards, chunksize=chunksize))
    return [worker(shard) for shard in shards]


def run_sweep(config, jobs: int | None = None) -> SweepResult:
    """Execute the full (error count x probability x profiler) grid.

    Args:
        config: a :class:`~repro.experiments.config.SweepConfig` (or any
            compatible object; it must be hashable — and picklable for
            ``jobs > 1`` — because word sampling is cached per config).
        jobs: worker processes.  ``None``/``1`` runs serially in-process;
            ``N > 1`` uses a pool of ``N``; ``0`` uses one per CPU.  The
            result is bit-identical for every setting.
    """
    shards = shard_grid(config)
    worker_count = _resolve_jobs(jobs)
    # Align chunks to whole error-count blocks (grid order is
    # error-count-major) so a block's word sampling and exponential
    # ground-truth enumeration stay on one worker; when there are
    # fewer blocks than workers, split each block as evenly as
    # possible instead of starving the pool.
    blocks = max(1, len(config.error_counts))
    block_size = max(1, len(shards) // blocks)
    if blocks >= worker_count:
        chunksize = block_size
    else:
        splits_per_block = -(-worker_count // blocks)  # ceil division
        chunksize = max(1, block_size // splits_per_block)
    cells: dict[tuple[int, float, str], SweepCell] = {}
    timings: dict[tuple[int, float, str], float] = {}
    for shard, (cell, elapsed) in zip(
        shards, execute_shards(run_shard, shards, jobs, chunksize=chunksize)
    ):
        cells[shard.key] = cell
        timings[shard.key] = elapsed
    return SweepResult(config=config, cells=cells, timings=timings)
