"""Fleet-scale field simulation: profile + repair a population of chips.

HARP evaluates one chip's profiler coverage under uniform-random fault
injection; this workload asks the *population* question a memory-fleet
operator faces: given N chips drawn from a field-calibrated fault-mix
model (:mod:`repro.memory.faults` — per-mode rates for single-cell /
row / column / bank faults with lognormal per-chip variation), how many
uncorrectable errors does active profiling plus a bounded repair budget
leave behind, and what does the repair storage cost?

Pipeline per chip:

1. **Sample** the chip's fault topology — chip-indexed seeding
   (``derive_seed(seed, "fleet-chip", chip_index, ...)``), so the
   population decomposes into independent chips and any subset can be
   recomputed bit-identically.
2. **Lower** the topology onto per-word
   :class:`~repro.memory.error_model.WordErrorProfile` objects.  Words
   with a single at-risk bit are SEC-correctable and tallied
   analytically; words with ≥ 2 at-risk bits are *profiled*.
3. **Profile** each such word for ``num_rounds`` rounds with the
   configured profiler (the cell-batched kernel when eligible, exactly
   like the sweep engine; ``REPRO_SIM_KERNEL=scalar`` forces the
   reference path — both are bit-identical).
4. **Repair**: greedy row sparing plus bit spares over what profiling
   identified (:func:`repro.repair.policy.plan_row_sparing`), under the
   per-chip ``spare_rows`` / ``spare_bits`` budget.
5. **Report** the chip's uncorrectable-error probability — analytic
   P[≥ 2 simultaneous failures] over the bits left exposed (missed by
   profiling or unrepairable within budget) — plus repair-storage
   economics and per-mode fault counts.

Sub-cell sharding
=================

Execution rides the shard engine.  Light chips batch into contiguous
``[start, stop)`` range shards (``chips_per_shard`` per shard), but a
fleet's runtime is dominated by its tail: a chip that caught a bank
fault holds orders of magnitude more profiled words than the median
chip, and a whole-cell shard holding it pins one worker for the whole
map.  When a chip's profiled-word count exceeds ``slice_words``, its
cell is split into :data:`CellSlice` shards — slice ``s`` of ``S``
simulates the profiled words whose index ``≡ s (mod S)`` — that many
workers share.  Per-word results are keyed by word coordinates, so the
merge is associative and order-independent, and the repair stage runs
only after a chip's slices are all in (row sparing needs the whole
chip).  ``slice_words=0`` disables splitting (whole-cell mode, the
benchmark baseline).

Resume, quarantine, and monitoring mirror the sweep engine:
``run(config, resume=PATH)`` streams slices to a
:class:`~repro.experiments.store.FleetStore`, a backend in
continue-past-quarantine mode reports poisoned slices (the affected
chips are excluded from fleet aggregates until healed), and a socket
backend's ``--status-port`` snapshot carries the fleet campaign fields.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache

from repro.ecc.hamming import random_sec_code
from repro.experiments import runner as sweep_runner
from repro.experiments.backends import resolve_backend
from repro.experiments.config import FleetConfig
from repro.memory.error_model import WordErrorProfile
from repro.memory.faults import (
    FAULT_MODES,
    ChipFaults,
    ChipGeometry,
    FaultMixModel,
    sample_chip_faults,
)
from repro.memory.patterns import pattern_is_seeded
from repro.profiling import PROFILER_REGISTRY
from repro.profiling.runner import (
    WordArtifacts,
    batched_kernel_enabled,
    simulate_word,
    simulate_words_batched,
)
from repro.repair.policy import plan_row_sparing
from repro.utils.rng import derive_rng, derive_seed

__all__ = [
    "FleetShard",
    "CellSlice",
    "ChipSummary",
    "FleetResult",
    "chip_faults",
    "profiled_words",
    "shard_fleet",
    "run_fleet_shard",
    "merge_slice_payloads",
    "finalize_chip",
    "run",
    "render",
]


def geometry_of(config: FleetConfig) -> ChipGeometry:
    return ChipGeometry(rows=config.rows, words_per_row=config.words_per_row)


def mix_model_of(config: FleetConfig) -> FaultMixModel:
    return FaultMixModel(
        single_rate=config.single_rate,
        row_rate=config.row_rate,
        column_rate=config.column_rate,
        bank_rate=config.bank_rate,
        variability_sigma=config.variability_sigma,
        row_density=config.row_density,
        column_density=config.column_density,
        bank_density=config.bank_density,
    )


@lru_cache(maxsize=256)
def _fleet_code(seed: int, k: int, code_index: int):
    """The fleet's ``code_index``-th on-die SEC code (cached per process)."""
    return random_sec_code(k, derive_rng(seed, "fleet-code", code_index))


def chip_code(config: FleetConfig, chip_index: int):
    """Chip ``chip_index``'s on-die code: chips cycle through ``num_codes``."""
    return _fleet_code(config.seed, config.k, chip_index % config.num_codes)


@lru_cache(maxsize=8192)
def _chip_faults_cached(config: FleetConfig, chip_index: int) -> ChipFaults:
    return sample_chip_faults(
        config.seed,
        chip_index,
        mix_model_of(config),
        geometry_of(config),
        chip_code(config, chip_index).n,
        config.max_at_risk_per_word,
    )


def chip_faults(config: FleetConfig, chip_index: int) -> ChipFaults:
    """Chip ``chip_index``'s fault topology (chip-indexed, memoized)."""
    return _chip_faults_cached(config, chip_index)


def profiled_words(faults: ChipFaults) -> list[tuple[int, tuple[int, ...]]]:
    """The chip's words holding ≥ 2 at-risk bits — the ones profiling runs on.

    A single at-risk bit cannot produce an uncorrectable error under
    SEC (the fig10 stratification argument), so those words are tallied
    analytically instead of simulated.
    """
    return [(word, positions) for word, positions in faults.word_positions if len(positions) >= 2]


def clear_fleet_caches() -> None:
    """Empty the fleet-layer caches (tests and benchmarks only)."""
    _fleet_code.cache_clear()
    _chip_faults_cached.cache_clear()


# ----------------------------------------------------------------------
# Shards: chip ranges and sub-cell slices
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FleetShard:
    """One picklable unit of fleet work: a chip range, or a cell slice.

    ``num_slices == 1`` covers chips ``[start, stop)`` whole.  A heavy
    chip instead ships as ``num_slices`` single-chip slices
    (``stop == start + 1``): slice ``s`` simulates the chip's profiled
    words whose position in the profiled-word list ``≡ s (mod
    num_slices)``.  Slices carry disjoint word sets keyed by word
    coordinates, so merging their payloads is associative and
    order-independent — any subset of workers can compute any subset of
    slices in any order.
    """

    config: FleetConfig
    start: int
    stop: int
    slice_index: int = 0
    num_slices: int = 1

    @property
    def key(self) -> tuple[int, int, int, int]:
        return (self.start, self.stop, self.slice_index, self.num_slices)


#: A sub-cell shard — a :class:`FleetShard` with ``num_slices > 1`` —
#: is a *cell slice*: many workers share one chip's cell and their
#: results merge associatively.
CellSlice = FleetShard


def shard_fleet(config: FleetConfig) -> list[FleetShard]:
    """Decompose a fleet into shards, chip order preserved.

    Light chips batch ``chips_per_shard`` per range shard; a chip whose
    profiled-word count exceeds ``slice_words`` becomes
    ``ceil(words / slice_words)`` cell slices.  With ``slice_words=0``
    every chip is light (whole-cell mode).
    """
    shards: list[FleetShard] = []
    batch_start: int | None = None

    def flush(stop: int) -> None:
        nonlocal batch_start
        if batch_start is not None:
            shards.append(FleetShard(config=config, start=batch_start, stop=stop))
            batch_start = None

    for chip in range(config.num_chips):
        words = len(profiled_words(chip_faults(config, chip)))
        if config.slice_words and words > config.slice_words:
            flush(chip)
            num_slices = -(-words // config.slice_words)  # ceil division
            for slice_index in range(num_slices):
                shards.append(
                    FleetShard(
                        config=config,
                        start=chip,
                        stop=chip + 1,
                        slice_index=slice_index,
                        num_slices=num_slices,
                    )
                )
            continue
        if batch_start is None:
            batch_start = chip
        if chip - batch_start + 1 >= config.chips_per_shard:
            flush(chip + 1)
    flush(config.num_chips)
    return shards


def _word_artifacts(
    config: FleetConfig, code, word_seed: int, count: int
) -> WordArtifacts:
    """Per-word precomputed inputs, via the sweep engine's shared caches.

    Routing through :func:`~repro.experiments.runner._schedule_for` /
    ``_encoded_schedule_for`` / ``_draws_for`` gives fleet words the
    same process-local memoization and shared-memory overlay
    (``--shared-cache``) the sweep engine has.
    """
    schedule_seed = word_seed if pattern_is_seeded(config.pattern) else 0
    return WordArtifacts(
        schedule=sweep_runner._schedule_for(
            config.pattern, schedule_seed, code.k, config.num_rounds
        ),
        codewords=sweep_runner._encoded_schedule_for(
            code, config.pattern, schedule_seed, config.num_rounds
        ),
        draws=sweep_runner._draws_for(word_seed, config.num_rounds, count),
    )


def run_fleet_shard(shard: FleetShard) -> dict:
    """Execute one shard: per-word identified sets for its chips/slice.

    Returns a JSON-safe payload — ``{"chips": [{"chip": i, "words":
    [[word, [positions...], [identified...]], ...]}, ...]}`` — where
    ``identified`` is the profiler's final identified set restricted to
    the word's at-risk positions (what the repair stage can act on).
    Pure function of the shard: any backend, order, or slicing produces
    bit-identical payloads.
    """
    config = shard.config
    chips = []
    for chip in range(shard.start, shard.stop):
        code = chip_code(config, chip)
        words = profiled_words(chip_faults(config, chip))
        mine = [
            (word, positions)
            for index, (word, positions) in enumerate(words)
            if index % shard.num_slices == shard.slice_index
        ]
        profiler_cls = PROFILER_REGISTRY[config.profiler]
        use_batched = (
            not profiler_cls.adaptive and profiler_cls.batched and batched_kernel_enabled()
        )
        profiles = [
            WordErrorProfile(positions, tuple(config.probability for _ in positions))
            for _, positions in mine
        ]
        seeds = [derive_seed(config.seed, "fleet-draws", chip, word) for word, _ in mine]
        if use_batched and mine:
            runs = simulate_words_batched(
                [
                    profiler_cls(code, seed=seed, pattern=config.pattern)
                    for seed in seeds
                ],
                profiles,
                config.num_rounds,
                seeds,
                artifacts=[
                    _word_artifacts(config, code, seed, len(positions))
                    for seed, (_, positions) in zip(seeds, mine)
                ],
            )
        else:
            runs = [
                simulate_word(
                    profiler_cls(code, seed=seed, pattern=config.pattern),
                    profile,
                    config.num_rounds,
                    seed,
                    artifacts=_word_artifacts(config, code, seed, len(profile.positions)),
                )
                for seed, profile in zip(seeds, profiles)
            ]
        chips.append(
            {
                "chip": chip,
                "words": [
                    [
                        word,
                        list(positions),
                        sorted(run.final_identified() & set(positions)),
                    ]
                    for (word, positions), run in zip(mine, runs)
                ],
            }
        )
    return {"chips": chips}


def _timed_fleet_shard(shard: FleetShard) -> tuple[dict, float]:
    """Pool worker: :func:`run_fleet_shard` plus its wall-clock seconds.

    As in the other drivers, the timing rides only into the resume
    store's ETA accounting — results stay bit-identical to the untimed
    worker.
    """
    started = time.perf_counter()
    payload = run_fleet_shard(shard)
    return payload, time.perf_counter() - started


def merge_slice_payloads(payloads: list[dict]) -> dict[int, dict[int, list[int]]]:
    """Fold shard payloads into ``{chip: {word: identified positions}}``.

    Associative and order-independent: slices carry disjoint word sets
    per chip, so dict union over word coordinates is the whole merge.
    """
    merged: dict[int, dict[int, list[int]]] = {}
    for payload in payloads:
        for entry in payload["chips"]:
            words = merged.setdefault(int(entry["chip"]), {})
            for word, _, identified in entry["words"]:
                words[int(word)] = [int(bit) for bit in identified]
    return merged


# ----------------------------------------------------------------------
# Per-chip finalization: repair policy + UE probability
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChipSummary:
    """One chip's fleet-level outcome: faults, coverage, repair, UE."""

    chip: int
    rate_scale: float
    #: Fault count per mode, aligned with :data:`~repro.memory.faults.FAULT_MODES`.
    mode_counts: tuple[int, ...]
    #: Total at-risk bits across the chip.
    at_risk_bits: int
    #: Words profiled (≥ 2 at-risk bits) / words with exactly one.
    profiled_words: int
    single_words: int
    #: At-risk bits the profiler identified / missed (profiled words).
    identified_bits: int
    missed_bits: int
    repaired_rows: int
    bit_repairs: int
    storage_bits: int
    wasted_bits: int
    #: P[some word suffers ≥ 2 simultaneous at-risk failures] with the
    #: repair plan applied / with no profiling or repair at all.
    ue_repaired: float
    ue_unrepaired: float


def _ue_word(exposed: int, probability: float) -> float:
    """P[≥ 2 of ``exposed`` independent at-risk bits fail at once].

    Under SEC a single error corrects; two or more simultaneous
    pre-correction errors in one word are (potentially) uncorrectable.
    """
    if exposed < 2:
        return 0.0
    p, m = probability, exposed
    return 1.0 - (1.0 - p) ** m - m * p * (1.0 - p) ** (m - 1)


def finalize_chip(
    config: FleetConfig, faults: ChipFaults, identified_by_word: dict[int, list[int]]
) -> ChipSummary:
    """Run the repair stage over a chip's merged slices and score it.

    A repaired row removes the physical row entirely, so *all* of its
    at-risk bits — identified or missed — stop being exposed; bit spares
    cover exactly the identified bits they were assigned to.  The UE
    probability is the complement-product over profiled words of
    :func:`_ue_word` on each word's exposed count.
    """
    geometry = geometry_of(config)
    n = chip_code(config, faults.chip_index).n
    words = profiled_words(faults)
    identified = {
        word: tuple(identified_by_word.get(word, ())) for word, _ in words
    }
    plan = plan_row_sparing(
        identified,
        geometry,
        row_bits=n * config.words_per_row,
        spare_rows=config.spare_rows,
        spare_bits=config.spare_bits,
    )
    covered_rows = set(plan.repaired_rows)
    spared_bits = set(plan.bit_repairs)
    ue_repaired = 1.0
    ue_unrepaired = 1.0
    for word, positions in words:
        ue_unrepaired *= 1.0 - _ue_word(len(positions), config.probability)
        if geometry.row_of(word) in covered_rows:
            continue
        exposed = sum(
            1
            for position in positions
            if (word, position) not in spared_bits
        )
        ue_repaired *= 1.0 - _ue_word(exposed, config.probability)
    identified_bits = sum(len(bits) for bits in identified.values())
    profiled_at_risk = sum(len(positions) for _, positions in words)
    return ChipSummary(
        chip=faults.chip_index,
        rate_scale=faults.rate_scale,
        mode_counts=faults.mode_counts,
        at_risk_bits=faults.total_at_risk,
        profiled_words=len(words),
        single_words=sum(
            1 for _, positions in faults.word_positions if len(positions) == 1
        ),
        identified_bits=identified_bits,
        missed_bits=profiled_at_risk - identified_bits,
        repaired_rows=len(plan.repaired_rows),
        bit_repairs=len(plan.bit_repairs),
        storage_bits=plan.storage_bits,
        wasted_bits=plan.wasted_bits,
        ue_repaired=1.0 - ue_repaired,
        ue_unrepaired=1.0 - ue_unrepaired,
    )


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FleetResult:
    """Per-chip summaries plus the campaign's quarantine ledger."""

    config: FleetConfig
    #: Completed chips in chip order (chips with a quarantined slice are
    #: excluded until a targeted re-run heals them).
    chips: tuple[ChipSummary, ...]
    #: Shard keys a continue-past-quarantine run set aside.
    quarantined: tuple[tuple[int, int, int, int], ...] = ()
    #: Chip indices excluded because one of their slices quarantined.
    incomplete_chips: tuple[int, ...] = ()


def run(
    config: FleetConfig = FleetConfig(),
    jobs: int | None = None,
    backend=None,
    resume: str | None = None,
    progress: bool | float = False,
    shared_cache: bool = False,
) -> FleetResult:
    """Simulate the fleet over any backend, with resume and sub-cell shards.

    Mirrors :func:`~repro.experiments.runner.run_sweep`'s contract:
    every ``jobs`` / ``backend`` / ``resume`` / slicing choice is
    bit-identical.  ``resume=PATH`` streams completed shards to a
    :class:`~repro.experiments.store.FleetStore`; ``shared_cache=True``
    publishes the fleet's shareable artifacts (codes' schedules,
    failure draws, aliasing tables) for local pool workers.  A backend
    in continue-past-quarantine mode reports poisoned shard keys on
    ``FleetResult.quarantined``; the affected chips are excluded from
    ``chips`` (listed on ``incomplete_chips``) until a targeted re-run
    completes them.
    """
    from repro.analysis import shared_memo
    from repro.experiments.backends import ProcessPoolBackend
    from repro.experiments.store import FleetStore

    shards = shard_fleet(config)
    # Resolve (and validate) the backend before any store side effects:
    # a bad spec must not leave a header-only store file behind.
    executor = resolve_backend(backend, jobs)
    if hasattr(executor, "campaign_info"):
        executor.campaign_info = {
            "workload": "fleet",
            "chips": config.num_chips,
            "shards": len(shards),
            "cell_slices": sum(1 for shard in shards if shard.num_slices > 1),
        }
    shared_block = None
    if shared_cache:
        shared_block = shared_memo.publish_entries(fleet_entries(config))
        if isinstance(executor, ProcessPoolBackend) and executor.jobs > 1:
            executor = ProcessPoolBackend(
                executor.jobs,
                initializer=shared_memo.attach_worker,
                initargs=(shared_block.name,),
            )
    store: FleetStore | None = None
    persisted: dict[tuple[int, int, int, int], dict] = {}
    if resume is not None:
        store = FleetStore(resume)
        stored_config, persisted = store.load()
        if persisted and stored_config is None:
            raise ValueError(
                f"{resume} holds shards but does not record the fleet config "
                "that produced them; refusing to reuse shards that cannot be "
                "verified (use a fresh --resume path)"
            )
        if stored_config is not None and stored_config != config:
            raise ValueError(
                f"{resume} was written by a different fleet config; "
                "refusing to mix results (use a fresh --resume path)"
            )
        store.open(config)
    from repro.experiments.monitor import progress_reporter, quarantined_keys

    pending = [shard for shard in shards if shard.key not in persisted]
    reporter = progress_reporter(progress, len(shards), "shards")
    if reporter is not None:
        reporter.start(done=len(persisted))
    payloads: dict[tuple[int, int, int, int], dict] = dict(persisted)
    quarantined: tuple[tuple[int, int, int, int], ...] = ()
    try:
        for index, (payload, elapsed) in executor.imap_unordered(
            _timed_fleet_shard, pending, chunksize=1
        ):
            key = pending[index].key
            payloads[key] = payload
            if store is not None:
                store.append(key, payload, seconds=elapsed)
            if reporter is not None:
                reporter.completed(elapsed)
        quarantined = quarantined_keys(
            executor, pending, lambda shard: shard.key, store=store
        )
        if reporter is not None:
            reporter.finish(quarantined=len(quarantined))
    finally:
        if store is not None:
            store.close()
        if shared_block is not None:
            shared_block.destroy()

    # A chip is complete only when every slice of its shard group landed;
    # a quarantined slice poisons exactly its own chips.
    incomplete = {
        chip
        for key in quarantined
        for chip in range(key[0], key[1])
    }
    merged = merge_slice_payloads(
        [payloads[shard.key] for shard in shards if shard.key in payloads]
    )
    summaries = tuple(
        finalize_chip(config, chip_faults(config, chip), merged.get(chip, {}))
        for chip in range(config.num_chips)
        if chip not in incomplete
    )
    return FleetResult(
        config=config,
        chips=summaries,
        quarantined=quarantined,
        incomplete_chips=tuple(sorted(incomplete)),
    )


def fleet_entries(config: FleetConfig) -> dict:
    """Shareable artifacts of a fleet run, keyed for the engine caches.

    The fleet analogue of :func:`repro.analysis.shared_memo.sweep_entries`:
    per-word schedules / encodings / failure draws (exactly the keys
    :func:`_word_artifacts` resolves) plus each fleet code's BEEP
    aliasing tables.  Published by ``run(..., shared_cache=True)``.
    """
    from repro.analysis.memo import _code_key, cached_aliasing_pairs

    entries: dict = {}
    codes = {}
    for chip in range(config.num_chips):
        code = chip_code(config, chip)
        codes[_code_key(code)] = code
        for word, positions in profiled_words(chip_faults(config, chip)):
            word_seed = derive_seed(config.seed, "fleet-draws", chip, word)
            schedule_seed = word_seed if pattern_is_seeded(config.pattern) else 0
            entries[("sched", config.pattern, schedule_seed, code.k, config.num_rounds)] = (
                "array",
                sweep_runner._schedule_for(
                    config.pattern, schedule_seed, code.k, config.num_rounds
                ),
            )
            entries[
                ("enc", _code_key(code), config.pattern, schedule_seed, config.num_rounds)
            ] = (
                "array",
                sweep_runner._encoded_schedule_for(
                    code, config.pattern, schedule_seed, config.num_rounds
                ),
            )
            entries[("draws", word_seed, config.num_rounds, len(positions))] = (
                "array",
                sweep_runner._draws_for(word_seed, config.num_rounds, len(positions)),
            )
    for code_key, code in codes.items():
        for target in range(code.n):
            entries[("pairs", code_key, target)] = (
                "pickle",
                cached_aliasing_pairs(code, target),
            )
    return entries


# ----------------------------------------------------------------------
# Rendition
# ----------------------------------------------------------------------


def render(result: FleetResult) -> str:
    """Operator-facing fleet report: faults, coverage, repair, UE."""
    config = result.config
    chips = result.chips
    lines = [
        f"fleet    {len(chips)}/{config.num_chips} chips · code k={config.k} · "
        f"profiler {config.profiler} · p={config.probability:.0%} · "
        f"{config.num_rounds} rounds"
    ]
    faulty = [chip for chip in chips if chip.at_risk_bits]
    mode_parts = []
    for index, mode in enumerate(FAULT_MODES):
        total = sum(chip.mode_counts[index] for chip in chips)
        affected = sum(1 for chip in chips if chip.mode_counts[index])
        mode_parts.append(f"{mode} {total} on {affected} chip(s)")
    lines.append(f"faults   {' · '.join(mode_parts)}")
    at_risk = sum(chip.at_risk_bits for chip in chips)
    lines.append(
        f"exposure {len(faulty)} faulty chip(s), {at_risk} at-risk bits, "
        f"{sum(chip.profiled_words for chip in chips)} profiled word(s), "
        f"{sum(chip.single_words for chip in chips)} single-bit word(s) "
        "(SEC-covered)"
    )
    identified = sum(chip.identified_bits for chip in chips)
    missed = sum(chip.missed_bits for chip in chips)
    profiled_bits = identified + missed
    if profiled_bits:
        share = 100.0 * identified / profiled_bits
        lines.append(
            f"coverage {identified}/{profiled_bits} profiled at-risk bits "
            f"identified ({share:.1f}%), {missed} missed"
        )
    rows = sum(chip.repaired_rows for chip in chips)
    bit_spares = sum(chip.bit_repairs for chip in chips)
    storage = sum(chip.storage_bits for chip in chips)
    wasted = sum(chip.wasted_bits for chip in chips)
    mean_storage = storage / len(chips) if chips else 0.0
    waste_share = (100.0 * wasted / storage) if storage else 0.0
    lines.append(
        f"repair   {rows} spare row(s) + {bit_spares} bit spare(s) = "
        f"{storage} storage bits ({mean_storage:.1f} bits/chip, "
        f"{waste_share:.1f}% row-capacity waste)"
    )
    if chips:
        mean_rep = sum(chip.ue_repaired for chip in chips) / len(chips)
        mean_unrep = sum(chip.ue_unrepaired for chip in chips) / len(chips)
        exposed = sum(1 for chip in chips if chip.ue_repaired > 0.0)
        factor = (mean_unrep / mean_rep) if mean_rep > 0 else float("inf")
        factor_text = "inf" if factor == float("inf") else f"{factor:.1f}x"
        lines.append(
            f"UE       mean P[UE] {mean_rep:.3e} repaired vs "
            f"{mean_unrep:.3e} unrepaired ({factor_text} reduction) · "
            f"{exposed} chip(s) still exposed"
        )
    if result.incomplete_chips:
        listed = ", ".join(str(chip) for chip in result.incomplete_chips)
        lines.append(
            f"partial  chip(s) {listed} excluded (quarantined slices await "
            "a targeted re-run)"
        )
    return "\n".join(lines)
