"""Fig 9: secondary-ECC correction capability required after active profiling.

Fig 9a — the distribution (histogram) over ECC words of the maximum number
of simultaneous post-correction errors still possible after the full active
phase.  HARP configurations are bounded at 1 (the on-die SEC correction
capability); Naive and BEEP leave multi-bit tails.

Fig 9b — how many active rounds are needed before the 99th-percentile word
is bounded by each capability value; the paper's headline speedups
(20.6-62.1% of Naive's rounds at p=0.5) come from the capability-1 column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import percent, profiler_order
from repro.experiments.runner import SweepResult
from repro.utils.stats import Histogram
from repro.utils.tables import format_table

__all__ = ["Fig9Result", "from_sweep", "render", "rounds_to_capability"]

FIG9_PROFILERS = ("Naive", "BEEP", "HARP-U", "HARP-A")
MAX_CAPABILITY_BIN = 6


def rounds_to_capability(
    sweep: SweepResult,
    error_count: int,
    probability: float,
    profiler: str,
    bound: int,
    q: float = 99.0,
) -> int | None:
    """Fig 9b metric: earliest round where the q-th percentile word's
    required capability is <= ``bound`` (1-based), or None if never."""
    from repro.utils.stats import percentile

    cell = sweep.cell(error_count, probability, profiler)
    num_rounds = len(cell.words[0].capability)
    for round_index in range(num_rounds):
        values = [word.capability[round_index] for word in cell.words]
        if percentile(values, q) <= bound:
            return round_index + 1
    return None


@dataclass(frozen=True)
class Fig9Result:
    """Capability histograms (9a) and rounds-to-bound tables (9b)."""

    error_counts: tuple[int, ...]
    probabilities: tuple[float, ...]
    profilers: tuple[str, ...]
    num_rounds: int
    #: (n, p, profiler) -> histogram of final required capability (9a).
    histograms: dict[tuple[int, float, str], Histogram]
    #: (n, p, profiler, bound) -> rounds needed, or None (9b).
    rounds_to_bound: dict[tuple[int, float, str, int], int | None]


def from_sweep(sweep: SweepResult, profilers: tuple[str, ...] = FIG9_PROFILERS) -> Fig9Result:
    """Reduce a sweep to both Fig 9 exhibits."""
    config = sweep.config
    selected = tuple(name for name in profilers if name in config.profilers)
    histograms: dict[tuple[int, float, str], Histogram] = {}
    rounds_to_bound: dict[tuple[int, float, str, int], int | None] = {}
    for error_count in config.error_counts:
        for probability in config.probabilities:
            for name in selected:
                cell = sweep.cell(error_count, probability, name)
                final = [word.capability[-1] for word in cell.words]
                histograms[(error_count, probability, name)] = Histogram.from_values(
                    final, MAX_CAPABILITY_BIN + 1
                )
                for bound in range(1, MAX_CAPABILITY_BIN + 1):
                    rounds_to_bound[(error_count, probability, name, bound)] = (
                        rounds_to_capability(sweep, error_count, probability, name, bound)
                    )
    return Fig9Result(
        error_counts=tuple(config.error_counts),
        probabilities=tuple(config.probabilities),
        profilers=selected,
        num_rounds=config.num_rounds,
        histograms=histograms,
        rounds_to_bound=rounds_to_bound,
    )


def render(result: Fig9Result) -> str:
    """Text rendition of both panels."""
    sections = []

    headers_a = ["profiler", "n", "P", *[f"cap={i}" for i in range(MAX_CAPABILITY_BIN + 1)]]
    rows_a = []
    for name in profiler_order(result.profilers):
        for error_count in result.error_counts:
            for probability in result.probabilities:
                histogram = result.histograms[(error_count, probability, name)]
                rows_a.append(
                    [name, error_count, percent(probability)]
                    + [f"{fraction:.2f}" for fraction in histogram.normalized()]
                )
    sections.append(
        "Fig 9a: distribution of max simultaneous post-correction errors "
        f"after {result.num_rounds} rounds\n" + format_table(headers_a, rows_a)
    )

    headers_b = ["profiler", "n", "P", *[f"<= {i}" for i in range(1, MAX_CAPABILITY_BIN + 1)]]
    rows_b = []
    for name in profiler_order(result.profilers):
        for error_count in result.error_counts:
            for probability in result.probabilities:
                row: list[object] = [name, error_count, percent(probability)]
                for bound in range(1, MAX_CAPABILITY_BIN + 1):
                    value = result.rounds_to_bound[(error_count, probability, name, bound)]
                    row.append(">%d" % result.num_rounds if value is None else value)
                rows_b.append(row)
    sections.append(
        "Fig 9b: rounds until 99th-percentile required capability <= bound\n"
        + format_table(headers_b, rows_b)
    )
    return "\n\n".join(sections)
