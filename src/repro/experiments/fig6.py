"""Fig 6: coverage of bits at risk of direct errors vs. profiling rounds.

Consumes a :class:`~repro.experiments.runner.SweepResult` and pools direct
coverage across all simulated words: at each round, identified direct-risk
(word, bit) pairs over total direct-risk pairs.  The paper plots Naive,
BEEP and HARP-U (HARP-A's direct coverage is identical to HARP-U's,
footnote 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import log_round_ticks, percent, profiler_order
from repro.experiments.runner import SweepResult
from repro.utils.tables import format_series

__all__ = ["Fig6Result", "from_sweep", "render", "coverage_curve"]

FIG6_PROFILERS = ("Naive", "BEEP", "HARP-U")


def coverage_curve(sweep: SweepResult, error_count: int, probability: float, profiler: str) -> list[float]:
    """Pooled direct-coverage trajectory of one sweep cell."""
    cell = sweep.cell(error_count, probability, profiler)
    num_rounds = len(cell.words[0].direct_identified)
    curve = []
    for round_index in range(num_rounds):
        identified = sum(word.direct_identified[round_index] for word in cell.words)
        total = sum(word.direct_total for word in cell.words)
        curve.append(identified / total if total else 1.0)
    return curve


@dataclass(frozen=True)
class Fig6Result:
    """Direct-coverage curves keyed by (error count, probability, profiler)."""

    error_counts: tuple[int, ...]
    probabilities: tuple[float, ...]
    profilers: tuple[str, ...]
    num_rounds: int
    curves: dict[tuple[int, float, str], tuple[float, ...]]

    def final_coverage(self, error_count: int, probability: float, profiler: str) -> float:
        return self.curves[(error_count, probability, profiler)][-1]


def from_sweep(sweep: SweepResult, profilers: tuple[str, ...] = FIG6_PROFILERS) -> Fig6Result:
    """Reduce a sweep to the Fig 6 curves."""
    config = sweep.config
    selected = tuple(name for name in profilers if name in config.profilers)
    curves = {
        (error_count, probability, name): tuple(
            coverage_curve(sweep, error_count, probability, name)
        )
        for error_count in config.error_counts
        for probability in config.probabilities
        for name in selected
    }
    return Fig6Result(
        error_counts=tuple(config.error_counts),
        probabilities=tuple(config.probabilities),
        profilers=selected,
        num_rounds=config.num_rounds,
        curves=curves,
    )


def render(result: Fig6Result) -> str:
    """Text rendition: one panel per (probability, error count)."""
    ticks = log_round_ticks(result.num_rounds)
    panels = []
    for probability in result.probabilities:
        for error_count in result.error_counts:
            series = {
                name: [
                    result.curves[(error_count, probability, name)][tick - 1] for tick in ticks
                ]
                for name in profiler_order(result.profilers)
            }
            title = (
                f"Fig 6 panel: per-bit pre-correction P={percent(probability)}, "
                f"{error_count} pre-correction errors — direct-error coverage"
            )
            panels.append(format_series(title, series, x_values=ticks, x_label="round"))
    return "\n\n".join(panels)
