"""Shared rendering helpers for experiment reports."""

from __future__ import annotations

from repro.utils.tables import format_table

__all__ = ["log_round_ticks", "percent", "profiler_order", "timing_table"]

#: Render profilers in the paper's customary order.
PROFILER_ORDER = ("Naive", "BEEP", "HARP-U", "HARP-A", "HARP-A+BEEP")


def log_round_ticks(num_rounds: int) -> list[int]:
    """Powers-of-two round ticks 1, 2, 4, ... up to ``num_rounds``.

    Matches the log-scale x-axes of the paper's Figs 6, 8, and 10.
    """
    if num_rounds < 1:
        raise ValueError("num_rounds must be positive")
    ticks = []
    tick = 1
    while tick <= num_rounds:
        ticks.append(tick)
        tick *= 2
    if ticks[-1] != num_rounds:
        ticks.append(num_rounds)
    return ticks


def percent(value: float) -> str:
    """Format a probability as the paper's percentage labels."""
    return f"{round(value * 100)}%"


def profiler_order(names: tuple[str, ...] | list[str]) -> list[str]:
    """Sort profiler names into the paper's presentation order."""
    ranking = {name: index for index, name in enumerate(PROFILER_ORDER)}
    return sorted(names, key=lambda name: ranking.get(name, len(ranking)))


def timing_table(sweep) -> str:
    """Per-cell wall-clock table of a sweep (engine instrumentation).

    Renders ``SweepResult.timings`` — the seconds each (error count,
    probability, profiler) cell took in whichever process executed it —
    plus the summed cell time.  Empty timings (e.g. deserialized results)
    render as a note instead of a table.
    """
    timings = getattr(sweep, "timings", None)
    if not timings:
        return "Sweep timings: (not recorded)"
    headers = ["pre-corr errors", "per-bit P", "profiler", "seconds"]
    rows = [
        [error_count, percent(probability), profiler, f"{seconds:.3f}"]
        for (error_count, probability, profiler), seconds in sorted(timings.items())
    ]
    total = sum(timings.values())
    return (
        f"Sweep timings: {len(timings)} cells, {total:.2f} s total cell time\n"
        + format_table(headers, rows)
    )
