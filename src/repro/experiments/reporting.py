"""Shared rendering helpers for experiment reports."""

from __future__ import annotations

__all__ = ["log_round_ticks", "percent", "profiler_order"]

#: Render profilers in the paper's customary order.
PROFILER_ORDER = ("Naive", "BEEP", "HARP-U", "HARP-A", "HARP-A+BEEP")


def log_round_ticks(num_rounds: int) -> list[int]:
    """Powers-of-two round ticks 1, 2, 4, ... up to ``num_rounds``.

    Matches the log-scale x-axes of the paper's Figs 6, 8, and 10.
    """
    if num_rounds < 1:
        raise ValueError("num_rounds must be positive")
    ticks = []
    tick = 1
    while tick <= num_rounds:
        ticks.append(tick)
        tick *= 2
    if ticks[-1] != num_rounds:
        ticks.append(num_rounds)
    return ticks


def percent(value: float) -> str:
    """Format a probability as the paper's percentage labels."""
    return f"{round(value * 100)}%"


def profiler_order(names: tuple[str, ...] | list[str]) -> list[str]:
    """Sort profiler names into the paper's presentation order."""
    ranking = {name: index for index, name in enumerate(PROFILER_ORDER)}
    return sorted(names, key=lambda name: ranking.get(name, len(ranking)))
