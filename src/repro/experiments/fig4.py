"""Fig 4: per-bit post-correction error probability distributions.

For ECC words holding a fixed number of at-risk bits that each fail with
probability 0.5 under the 0xFF (all-charged) pattern, the paper plots the
distribution of each at-risk bit's probability of *post-correction* error
across many random (71, 64) codes.  Pre-correction probabilities are 0.5 by
construction; post-correction probabilities spread wide and concentrate
toward 0 as the error count grows — the "harder to identify" challenge.

We compute each bit's probability *exactly* by enumerating failure subsets
(:mod:`repro.analysis.probabilities`) rather than by sampling, so the
distributions carry no Monte-Carlo noise at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.probabilities import per_bit_post_error_probabilities
from repro.ecc.hamming import random_sec_code
from repro.memory.error_model import sample_word_profile
from repro.utils.rng import derive_rng
from repro.utils.tables import format_table

__all__ = ["Fig4Config", "Fig4Result", "run", "render"]

PAPER_COUNTS = (2, 3, 4, 5, 6, 7, 8)


@dataclass(frozen=True)
class Fig4Config:
    """Scale knobs of the Fig 4 computation."""

    k: int = 64
    num_codes: int = 10
    words_per_code: int = 20
    error_counts: tuple[int, ...] = PAPER_COUNTS
    probability: float = 0.5
    seed: int = 2021


@dataclass(frozen=True)
class Fig4Result:
    """Per-error-count samples of per-bit post-correction probabilities."""

    config: Fig4Config
    #: error count -> probabilities of every at-risk bit across all words
    samples: dict[int, tuple[float, ...]]

    def summary(self, count: int) -> dict[str, float]:
        values = np.asarray(self.samples[count])
        return {
            "median": float(np.median(values)),
            "mean": float(values.mean()),
            "p10": float(np.percentile(values, 10)),
            "p90": float(np.percentile(values, 90)),
            "max": float(values.max()),
        }


def run(config: Fig4Config = Fig4Config()) -> Fig4Result:
    """Collect the exact per-bit probability distribution per error count."""
    charged_data = np.ones(config.k, dtype=np.uint8)
    samples: dict[int, list[float]] = {count: [] for count in config.error_counts}
    for code_index in range(config.num_codes):
        code_rng = derive_rng(config.seed, "fig4-code", code_index)
        code = random_sec_code(config.k, code_rng)
        for count in config.error_counts:
            for word_index in range(config.words_per_code):
                word_rng = derive_rng(config.seed, "fig4-word", code_index, count, word_index)
                profile = sample_word_profile(code, count, config.probability, word_rng)
                probabilities = per_bit_post_error_probabilities(code, profile, charged_data)
                samples[count].extend(probabilities.values())
    return Fig4Result(
        config=config,
        samples={count: tuple(values) for count, values in samples.items()},
    )


def render(result: Fig4Result) -> str:
    """Text rendition of the Fig 4 violin summaries."""
    headers = ["pre-corr errors", "pre-corr P", "median post P", "mean", "p10", "p90", "max"]
    rows = []
    for count in result.config.error_counts:
        summary = result.summary(count)
        rows.append(
            [
                count,
                result.config.probability,
                summary["median"],
                summary["mean"],
                summary["p10"],
                summary["p90"],
                summary["max"],
            ]
        )
    return (
        "Fig 4: per-bit post-correction error probability (0xFF pattern)\n"
        + format_table(headers, rows)
    )
