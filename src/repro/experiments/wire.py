"""``repro-wire-v1``: the socket fleet's versioned, authenticated frame codec.

The original socket transport (PR 3) shipped shards as length-prefixed
*pickles* — fine for a trusted loopback cluster, a non-starter for the
untrusted networks the service direction targets, because pickles are
code and a single corrupted frame kills the whole session.  This module
replaces it with a production-grade wire format:

* **No pickle.**  Payloads are a tagged-node encoding over a JSON
  header plus raw binary blob sections (ndarray/bytes payloads travel
  as blobs, never base64).  The only code reference a frame can carry
  is a ``module:qualname`` *name* (the worker function, dataclass
  types), resolved by import on the receiving side — exactly the
  visibility contract pickle-by-reference already required, without
  pickle's arbitrary-constructor execution.  The legacy pickle codec
  survives behind an explicit ``--wire pickle`` flag for old fleets.
* **Per-frame HMAC.**  Every frame ends in an HMAC-SHA256 over the
  entire frame, verified with :func:`hmac.compare_digest`.  With a
  shared secret (``--auth-token``) the MAC is keyed from it, so frames
  from a peer that does not know the secret — or frames flipped by a
  fault injector — fail closed.  Without a secret the MAC is keyed
  from a fixed label and still detects corruption (integrity only).
  The MAC authenticates; it does not encrypt — the frame body
  (including the join token inside ``hello``) is readable on the wire,
  so secrecy still needs network-level isolation or a TLS tunnel.
* **Campaign id + sequence numbers.**  Frames carry the map's campaign
  id (rejecting strays from another server) and a per-connection,
  per-direction sequence number.  A replayed or duplicated frame has a
  stale sequence number and is *silently skipped*; a corrupted frame
  raises :class:`FrameRejected` — the frame was fully consumed, so the
  stream stays aligned and the session survives.  Only structural
  damage (bad magic, an oversized or torn length field) raises
  :class:`StreamDesync`, which the transport answers by dropping the
  connection and requeueing the in-flight chunk.

Frame layout
============

::

    b"RPW1" | u32 header_len | u64 blobs_len          (preamble, >)
    header_len bytes of UTF-8 JSON                     (the header)
    blobs_len bytes of concatenated binary blobs       (the blob heap)
    32 bytes of HMAC-SHA256 over everything above      (the MAC)

The header is ``{"v": 1, "kind": ..., "campaign": ..., "seq": ...,
"body": <node>, "blobs": [len, ...]}``.  ``body`` is the tagged-node
encoding of the frame's payload tuple:

==========================  ===========================================
node                        value
==========================  ===========================================
``null/bool/number/string`` itself (floats round-trip exactly via repr)
``["t", ...]``              tuple of decoded items
``["l", ...]``              list of decoded items
``["d", [[k, v], ...]]``    dict (keys are nodes too, so tuples key)
``["set"/"fset", [...]]``   set / frozenset
``["by", i]``               ``bytes``: blob ``i`` verbatim
``["nd", i, dtype, shape]`` ``numpy.ndarray`` from blob ``i``
``["ns", i, dtype]``        numpy scalar from blob ``i``
``["dc", "mod:qual", [[field, v], ...]]``  dataclass instance
``["fn", "mod:qual"]``      module-level function/class, by reference
==========================  ===========================================

``decode_node`` refuses a ``dc`` target that is not a dataclass and a
``fn`` target that is not callable, and never calls anything during
decoding — construction happens only for verified dataclass types.

See :mod:`repro.experiments.backends` for the frame *kinds* and the
session protocol built on top, and ``docs/distributed.md`` for the
operator view.
"""

from __future__ import annotations

import dataclasses
import hashlib
import hmac
import importlib
import json
import pickle
import socket
import struct
from typing import Sequence

import numpy as np

__all__ = [
    "WIRE_FORMAT",
    "WIRE_CHOICES",
    "MAGIC",
    "MAX_FRAME",
    "FrameRejected",
    "StreamDesync",
    "encode_node",
    "decode_node",
    "pack_frame",
    "read_frame",
    "recv_exact",
    "WireV1Session",
    "PickleSession",
    "make_session",
]

#: Format tag of the v1 frame codec (docs, status, CLI).
WIRE_FORMAT = "repro-wire-v1"

#: Accepted values of the ``--wire`` knob.
WIRE_CHOICES = ("v1", "pickle")

#: First four bytes of every v1 frame.
MAGIC = b"RPW1"

#: Preamble: magic, header byte length, blob-heap byte length.
_PREAMBLE = struct.Struct(">4sIQ")

#: Trailing HMAC-SHA256 size.
_MAC_SIZE = 32

#: Upper bound on one frame's header + blobs.  Anything larger is not a
#: frame this protocol would ever produce — it is a desynchronized or
#: hostile stream, and must fail before a multi-GiB allocation.
MAX_FRAME = 1 << 30

#: MAC key used when no shared secret is configured, and for the
#: handshake frames (hello/welcome/reject) always — the worker cannot
#: key on the secret before the server's welcome tells it whether this
#: server enforces one.
_DEFAULT_KEY = hashlib.sha256(b"repro-wire-v1:integrity").digest()


def _derive_key(secret: str) -> bytes:
    """Session MAC key from the fleet's shared secret."""
    return hashlib.sha256(b"repro-wire-v1:auth:" + secret.encode("utf-8")).digest()


class FrameRejected(Exception):
    """One frame was unusable (bad MAC, undecodable body, wrong campaign).

    The frame was fully consumed, so the stream is still aligned: the
    receiver may answer with a retry frame (``badframe``/``nack``) and
    keep the session — per-frame rejection, not session death.
    """


class StreamDesync(ConnectionError):
    """The byte stream itself is unusable (bad magic, torn or absurd
    length fields).  Frame boundaries are lost, so the only recovery is
    dropping the connection; it subclasses :class:`ConnectionError` so
    every existing requeue-and-reconnect path already handles it."""


# ----------------------------------------------------------------------
# Tagged-node payload encoding
# ----------------------------------------------------------------------


def _reference(obj) -> str:
    module = getattr(obj, "__module__", None)
    qualname = getattr(obj, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        raise TypeError(
            f"cannot encode {obj!r} by reference: it must be a module-level "
            "name (the same restriction pickle-by-reference has)"
        )
    return f"{module}:{qualname}"


def _resolve(reference: str):
    module_name, _, qualname = reference.partition(":")
    if not module_name or not qualname:
        raise FrameRejected(f"malformed object reference {reference!r}")
    try:
        target = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
    except Exception as error:
        raise FrameRejected(
            f"cannot resolve {reference!r} on this side (code skew between "
            f"server and worker?): {error}"
        ) from None
    return target


def encode_node(value, blobs: list[bytes]):
    """Encode ``value`` into a JSON-safe node, appending binary blobs."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value  # json repr round-trips doubles (NaN/inf included)
    if isinstance(value, tuple):
        return ["t", *(encode_node(item, blobs) for item in value)]
    if isinstance(value, list):
        return ["l", *(encode_node(item, blobs) for item in value)]
    if isinstance(value, dict):
        return [
            "d",
            [
                [encode_node(key, blobs), encode_node(item, blobs)]
                for key, item in value.items()
            ],
        ]
    if isinstance(value, frozenset):
        return ["fset", [encode_node(item, blobs) for item in value]]
    if isinstance(value, set):
        return ["set", [encode_node(item, blobs) for item in value]]
    if isinstance(value, (bytes, bytearray)):
        blobs.append(bytes(value))
        return ["by", len(blobs) - 1]
    if isinstance(value, np.ndarray):
        array = np.ascontiguousarray(value)
        blobs.append(array.tobytes())
        return ["nd", len(blobs) - 1, array.dtype.str, list(array.shape)]
    if isinstance(value, np.generic):
        blobs.append(value.tobytes())
        return ["ns", len(blobs) - 1, value.dtype.str]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = [
            [field.name, encode_node(getattr(value, field.name), blobs)]
            for field in dataclasses.fields(value)
        ]
        return ["dc", _reference(type(value)), fields]
    if callable(value):
        return ["fn", _reference(value)]
    raise TypeError(
        f"repro-wire-v1 cannot encode {type(value).__name__!r} values; "
        "shard payloads must be JSON atoms, containers, bytes, numpy "
        "arrays, dataclasses, or module-level callables"
    )


def decode_node(node, blobs: Sequence[bytes]):
    """Decode a node produced by :func:`encode_node`.

    Raises :class:`FrameRejected` for anything malformed — the caller
    has already consumed the frame, so decoding failures must not kill
    the session.
    """
    try:
        if node is None or isinstance(node, (bool, int, float, str)):
            return node
        tag = node[0]
        if tag == "t":
            return tuple(decode_node(item, blobs) for item in node[1:])
        if tag == "l":
            return [decode_node(item, blobs) for item in node[1:]]
        if tag == "d":
            return {
                decode_node(key, blobs): decode_node(item, blobs)
                for key, item in node[1]
            }
        if tag == "set":
            return {decode_node(item, blobs) for item in node[1]}
        if tag == "fset":
            return frozenset(decode_node(item, blobs) for item in node[1])
        if tag == "by":
            return blobs[node[1]]
        if tag == "nd":
            _, index, dtype, shape = node
            return np.frombuffer(blobs[index], dtype=np.dtype(dtype)).reshape(
                shape
            ).copy()
        if tag == "ns":
            _, index, dtype = node
            return np.frombuffer(blobs[index], dtype=np.dtype(dtype))[0]
        if tag == "dc":
            _, reference, fields = node
            cls = _resolve(reference)
            if not (isinstance(cls, type) and dataclasses.is_dataclass(cls)):
                raise FrameRejected(
                    f"{reference!r} is not a dataclass type; refusing to "
                    "construct it from the wire"
                )
            return cls(**{name: decode_node(item, blobs) for name, item in fields})
        if tag == "fn":
            target = _resolve(node[1])
            if not callable(target):
                raise FrameRejected(f"{node[1]!r} is not callable")
            return target
    except FrameRejected:
        raise
    except Exception as error:
        raise FrameRejected(f"malformed payload node: {error}") from None
    raise FrameRejected(f"unknown payload node tag {node[0]!r}")


# ----------------------------------------------------------------------
# Frame pack/read
# ----------------------------------------------------------------------


def recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes, ``None`` on a clean EOF at byte 0."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if remaining == count:
                return None
            raise StreamDesync("socket closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def pack_frame(kind: str, body, *, campaign: str, seq: int, key: bytes) -> bytes:
    """Serialize one authenticated v1 frame."""
    blobs: list[bytes] = []
    node = encode_node(body, blobs)
    header = json.dumps(
        {
            "v": 1,
            "kind": kind,
            "campaign": campaign,
            "seq": seq,
            "body": node,
            "blobs": [len(blob) for blob in blobs],
        },
        separators=(",", ":"),
    ).encode("utf-8")
    heap = b"".join(blobs)
    preamble = _PREAMBLE.pack(MAGIC, len(header), len(heap))
    data = preamble + header + heap
    return data + hmac.new(key, data, hashlib.sha256).digest()


def read_frame(sock: socket.socket, key: bytes) -> tuple[dict, list[bytes]] | None:
    """Read and authenticate one v1 frame; ``(header, blobs)`` or ``None``
    on clean EOF.

    Raises :class:`StreamDesync` when the stream cannot possibly be at a
    frame boundary (bad magic, absurd lengths, mid-frame EOF) and
    :class:`FrameRejected` when the frame parsed but failed its MAC or
    its header — the stream is aligned, only this frame is lost.
    """
    preamble = recv_exact(sock, _PREAMBLE.size)
    if preamble is None:
        return None
    magic, header_len, heap_len = _PREAMBLE.unpack(preamble)
    if magic != MAGIC:
        raise StreamDesync(
            f"bad frame magic {magic!r} (peer speaking a different wire "
            "format? both sides must use the same --wire)"
        )
    if header_len + heap_len > MAX_FRAME:
        raise StreamDesync(
            f"frame announces {header_len + heap_len} bytes "
            f"(> {MAX_FRAME}); stream is desynchronized or hostile"
        )
    rest = recv_exact(sock, header_len + heap_len + _MAC_SIZE)
    if rest is None:
        raise StreamDesync("socket closed between preamble and frame body")
    data, mac = rest[: header_len + heap_len], rest[header_len + heap_len :]
    expected = hmac.new(key, preamble + data, hashlib.sha256).digest()
    if not hmac.compare_digest(mac, expected):
        raise FrameRejected("frame failed HMAC verification")
    try:
        header = json.loads(data[:header_len].decode("utf-8"))
        if header.get("v") != 1 or not isinstance(header.get("kind"), str):
            raise ValueError("not a v1 header")
        lengths = header.get("blobs", [])
        if sum(lengths) != heap_len:
            raise ValueError("blob lengths disagree with the heap size")
    except (ValueError, UnicodeDecodeError) as error:
        # MAC passed but the header is garbage: a peer bug, not line
        # noise.  The frame is consumed either way.
        raise FrameRejected(f"unreadable frame header: {error}") from None
    blobs = []
    offset = header_len
    for length in lengths:
        blobs.append(data[offset : offset + length])
        offset += length
    return header, blobs


# ----------------------------------------------------------------------
# Per-connection sessions (the codec objects the backend speaks through)
# ----------------------------------------------------------------------


class WireV1Session:
    """Framing state for one connection: MAC key, campaign id, seq counters.

    The handshake frames (``hello``/``welcome``/``reject``) are MAC'd
    with the fixed default key — the worker cannot know whether this
    server keys on a secret until the ``welcome`` says so.  After the
    handshake, :meth:`secure` switches both directions to the
    token-derived key (``mac mode "token"``) or keeps the default key
    (mode ``"default"``, the tokenless fleet).  A tokenless server
    therefore still accepts a worker that was *given* a token, exactly
    like the legacy handshake: the welcome tells it not to use it.

    Sequence numbers are per-direction and strictly increasing; a
    received frame with a stale number (a duplicate, a replay) is
    skipped silently inside :meth:`recv`.
    """

    name = "v1"

    def __init__(self, secret: str | None = None) -> None:
        self._token_key = _derive_key(secret) if secret else _DEFAULT_KEY
        self._key = _DEFAULT_KEY
        #: Campaign id frames must carry; ``""`` accepts any (handshake).
        self.campaign = ""
        self.mac_mode = "token" if secret else "default"
        self._send_seq = 0
        self._recv_seq = 0

    def secure(self, mode: str | None = None) -> str:
        """Leave the handshake phase; returns the active MAC mode."""
        if mode is not None:
            self.mac_mode = mode
        self._key = self._token_key if self.mac_mode == "token" else _DEFAULT_KEY
        return self.mac_mode

    def send(self, sock: socket.socket, message: tuple) -> None:
        kind, body = message[0], tuple(message[1:])
        self._send_seq += 1
        sock.sendall(
            pack_frame(
                kind, body, campaign=self.campaign, seq=self._send_seq, key=self._key
            )
        )

    def recv(self, sock: socket.socket) -> tuple | None:
        """One ``(kind, *payload)`` message, ``None`` on clean EOF.

        Duplicated/replayed frames (stale seq) are skipped silently;
        unusable single frames raise :class:`FrameRejected`; a broken
        stream raises :class:`StreamDesync`.
        """
        while True:
            frame = read_frame(sock, self._key)
            if frame is None:
                return None
            header, blobs = frame
            seq = header.get("seq")
            if not isinstance(seq, int) or seq <= self._recv_seq:
                continue  # duplicate or replay: drop without a fuss
            self._recv_seq = seq
            campaign = header.get("campaign", "")
            if self.campaign and campaign and campaign != self.campaign:
                raise FrameRejected(
                    f"frame belongs to campaign {campaign!r}, this session is "
                    f"{self.campaign!r}"
                )
            body = decode_node(header.get("body"), blobs)
            if not isinstance(body, tuple):
                raise FrameRejected("frame body is not a payload tuple")
            return (header["kind"], *body)


class PickleSession:
    """The legacy length-prefixed pickle codec (``--wire pickle``).

    One 8-byte big-endian length, then that many bytes of pickle.  No
    MAC, no sequence numbers, no campaign id — kept only so an old
    trusted-cluster fleet can finish its campaign; everything new
    should speak v1.  Unpicklable payloads raise :class:`FrameRejected`
    (the frame was fully read, the stream stays aligned), and the same
    :data:`MAX_FRAME` bound turns an absurd length prefix into
    :class:`StreamDesync` instead of a multi-GiB allocation.
    """

    name = "pickle"
    _LENGTH = struct.Struct(">Q")

    def __init__(self, secret: str | None = None) -> None:
        self.campaign = ""
        self.mac_mode = "none"

    def secure(self, mode: str | None = None) -> str:
        return self.mac_mode

    def send(self, sock: socket.socket, message: tuple) -> None:
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        sock.sendall(self._LENGTH.pack(len(payload)) + payload)

    def recv(self, sock: socket.socket) -> tuple | None:
        header = recv_exact(sock, self._LENGTH.size)
        if header is None:
            return None
        (length,) = self._LENGTH.unpack(header)
        if length > MAX_FRAME:
            raise StreamDesync(
                f"pickle frame announces {length} bytes (> {MAX_FRAME}); "
                "stream is desynchronized or hostile"
            )
        payload = recv_exact(sock, length)
        if payload is None:
            raise StreamDesync("socket closed between header and payload")
        try:
            return pickle.loads(payload)
        except Exception as error:
            raise FrameRejected(
                f"frame failed to unpickle (code skew between server and "
                f"worker?): {error}"
            ) from None


def make_session(wire: str, secret: str | None = None):
    """Session factory for the ``--wire`` knob (``v1`` | ``pickle``)."""
    if wire == "v1":
        return WireV1Session(secret)
    if wire == "pickle":
        return PickleSession(secret)
    raise ValueError(f"unknown wire format {wire!r} (expected one of {WIRE_CHOICES})")
