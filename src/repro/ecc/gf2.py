"""Dense linear algebra over GF(2) — the tier-dispatching facade.

Matrices are two-dimensional ``numpy`` arrays of dtype ``uint8`` containing
0/1 entries; vectors are one-dimensional.  All arithmetic is modulo 2.

This module is the mathematical core of the repository: the on-die ECC
encoder/decoder (:mod:`repro.ecc.linear_code`), the ground-truth at-risk-set
computation (:mod:`repro.analysis.atrisk`), and BEEP's data-pattern crafting
all reduce to GF(2) matrix operations exposed here.

Kernel tiers
============

Two interchangeable kernel tiers implement the elimination ops
(``row_reduce`` / ``rank`` / ``solve`` / ``is_consistent`` / ``nullspace``):

``unpacked``
    The reference tier kept in this module: rows packed into Python
    integers, per-column pivot scan, whole-row integer XOR.  Lowest
    constant overhead — wins on the small parity-check-shaped systems
    that dominate unit tests and single solves.

``packed``
    The word-parallel tier in :mod:`repro.ecc.gf2w`: rows packed 64
    columns per ``uint64`` word, elimination as broadcast XOR over all
    rows at once.  Wins as matrices grow (reverse engineering, BEEP
    crafted-pattern batches, wide ground-truth systems).

Both tiers use the *same pivot-selection order* (first unreduced row with
a one in the leftmost eligible column, eliminated from every row), so
their outputs are bit-identical for every input — dispatch is purely a
performance decision and every downstream exhibit is tier-independent.

Dispatch picks ``packed`` for elimination when the operand has at least
``_AUTO_PACKED_SIZE`` entries (a measured crossover — Python-int rows
are themselves word-packed, so the packed kernel's per-column numpy
overhead only amortizes on large systems) and ``unpacked`` below.  The
``REPRO_GF2_TIER`` environment variable overrides the choice for the
whole process: ``packed`` / ``unpacked`` force one tier everywhere
(CI runs the tier-1 suite under both), ``auto`` (or unset) restores
size-based dispatch.

Matrix products (``matmul`` / ``matvec``) dispatch on the product's
multiply-accumulate count instead: the packed XOR+popcount kernel
(``np.packbits`` packing plus ``np.bitwise_count``) pays a per-call
packing cost that only amortizes once the product does at least
``_AUTO_PACKED_WORK`` bit-operations, so ``auto`` keeps single-pattern
encodes on the historical widen-to-int64-then-mod path and routes batch
encodes to the popcount kernel.  A forced tier overrides this too.
Inputs must be 0/1 arrays; use :func:`is_bit_matrix` to validate
untrusted data.
"""

from __future__ import annotations

import os

import numpy as np

from repro.ecc import gf2w

__all__ = [
    "identity",
    "zeros",
    "matmul",
    "matvec",
    "add",
    "row_reduce",
    "rank",
    "solve",
    "is_consistent",
    "nullspace",
    "is_bit_matrix",
    "active_tier",
]

#: Operand size (entries) at which auto dispatch switches to the packed tier.
#: Below this the Python-int reference tier has lower constant overhead.
#: Minimum matrix entry count before packed elimination beats the
#: integer-row reference — the per-column numpy dispatch overhead of the
#: packed kernel needs whole-matrix XOR width to amortize (measured
#: crossover is near 256x256; the win grows with row count from there).
_AUTO_PACKED_SIZE = 65536

#: Minimum multiply-accumulate count (rows * inner * cols) before the
#: popcount product kernel beats the int64 path — below it, per-call
#: packing overhead dominates (measured crossover is near 2**14.5).
_AUTO_PACKED_WORK = 32768

_TIER_ENV = "REPRO_GF2_TIER"
_TIERS = ("auto", "packed", "unpacked")


def _tier() -> str:
    value = os.environ.get(_TIER_ENV, "auto").strip().lower() or "auto"
    if value not in _TIERS:
        raise ValueError(
            f"{_TIER_ENV} must be one of {_TIERS}, got {value!r}"
        )
    return value


def active_tier(size: int = 0) -> str:
    """The kernel tier an elimination op on ``size`` entries would use."""
    tier = _tier()
    if tier != "auto":
        return tier
    return "packed" if size >= _AUTO_PACKED_SIZE else "unpacked"


def _product_tier(work: int) -> str:
    """The kernel tier a product doing ``work`` multiply-accumulates uses."""
    tier = _tier()
    if tier != "auto":
        return tier
    return "packed" if work >= _AUTO_PACKED_WORK else "unpacked"


def is_bit_matrix(matrix: np.ndarray) -> bool:
    """True if ``matrix`` contains only 0/1 entries."""
    arr = np.asarray(matrix)
    if arr.dtype == np.bool_:
        return True
    if arr.dtype == np.uint8:
        # Single reduction, no boolean temporaries, on the hot
        # revalidation path.
        return arr.size == 0 or int(arr.max()) <= 1
    return bool(np.all((arr == 0) | (arr == 1)))


def _validated(matrix: np.ndarray, ndim: int) -> np.ndarray:
    if isinstance(matrix, np.ndarray) and matrix.dtype == np.uint8:
        if matrix.ndim != ndim:
            raise ValueError(
                f"expected a {ndim}-dimensional array, got shape {matrix.shape}"
            )
        return matrix
    arr = np.asarray(matrix, dtype=np.uint8)
    if arr.ndim != ndim:
        raise ValueError(f"expected a {ndim}-dimensional array, got shape {arr.shape}")
    return arr


def identity(n: int) -> np.ndarray:
    """The n-by-n identity matrix over GF(2)."""
    return np.eye(n, dtype=np.uint8)


def zeros(rows: int, cols: int) -> np.ndarray:
    """A rows-by-cols zero matrix."""
    return np.zeros((rows, cols), dtype=np.uint8)


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product modulo 2 (operands must be 0/1)."""
    a = _validated(a, 2)
    b = _validated(b, 2)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch for matmul: {a.shape} @ {b.shape}")
    if _product_tier(a.shape[0] * a.shape[1] * b.shape[1]) == "unpacked":
        # Historical reference path: accumulate in a wide dtype to avoid
        # uint8 overflow, then reduce mod 2.
        return (a.astype(np.int64) @ b.astype(np.int64) % 2).astype(np.uint8)
    return gf2w.matmul(a, b)


def matvec(a: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Matrix-vector product modulo 2."""
    a = _validated(a, 2)
    v = np.asarray(v, dtype=np.uint8).reshape(-1)
    if v.shape[0] != a.shape[1]:
        raise ValueError(f"shape mismatch for matvec: {a.shape} @ {v.shape}")
    if _product_tier(a.shape[0] * a.shape[1]) == "unpacked":
        return (a.astype(np.int64) @ v.astype(np.int64) % 2).astype(np.uint8)
    return gf2w.matvec(a, v)


def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise sum modulo 2 (XOR)."""
    return np.bitwise_xor(np.asarray(a, dtype=np.uint8), np.asarray(b, dtype=np.uint8))


def _pack_rows(matrix: np.ndarray) -> list[int]:
    """Pack each row into a Python integer (bit i = column i).

    Vectorized via ``np.packbits``: one little-endian byte pass over the
    whole matrix, then a bytes-to-int conversion per row.
    """
    arr = np.ascontiguousarray(matrix, dtype=np.uint8)
    if arr.shape[1] == 0:
        return [0] * arr.shape[0]
    packed_bytes = np.packbits(arr, axis=1, bitorder="little")
    return [int.from_bytes(row.tobytes(), "little") for row in packed_bytes]


def _unpack_rows(packed: list[int], cols: int) -> np.ndarray:
    """Inverse of :func:`_pack_rows`."""
    num_bytes = (cols + 7) // 8
    if num_bytes == 0:
        return np.zeros((len(packed), 0), dtype=np.uint8)
    buffer = b"".join(value.to_bytes(num_bytes, "little") for value in packed)
    as_bytes = np.frombuffer(buffer, dtype=np.uint8).reshape(len(packed), num_bytes)
    return np.unpackbits(as_bytes, axis=1, bitorder="little", count=cols)


def _row_reduce_unpacked(arr: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Reference elimination: Python-int rows, per-column pivot scan."""
    rows, cols = arr.shape
    work = _pack_rows(arr)
    pivot_columns: list[int] = []
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        mask = 1 << col
        source = next((r for r in range(pivot_row, rows) if work[r] & mask), None)
        if source is None:
            continue
        work[pivot_row], work[source] = work[source], work[pivot_row]
        pivot_value = work[pivot_row]
        for row in range(rows):
            if row != pivot_row and work[row] & mask:
                work[row] ^= pivot_value
        pivot_columns.append(col)
        pivot_row += 1
    return _unpack_rows(work, cols), pivot_columns


def row_reduce(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Reduced row-echelon form over GF(2).

    Returns ``(rref, pivot_columns)``.  ``matrix`` is not modified.
    Dispatches between the kernel tiers (module docstring); both produce
    bit-identical output.
    """
    arr = _validated(matrix, 2)
    if active_tier(arr.size) == "packed":
        return gf2w.row_reduce(arr)
    return _row_reduce_unpacked(arr)


def rank(matrix: np.ndarray) -> int:
    """Rank of a matrix over GF(2)."""
    _, pivots = row_reduce(matrix)
    return len(pivots)


def _reduced_augmented(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, list[int], int]:
    a = _validated(a, 2)
    b = np.asarray(b, dtype=np.uint8).reshape(-1)
    if b.shape[0] != a.shape[0]:
        raise ValueError(f"shape mismatch: A has {a.shape[0]} rows, b has {b.shape[0]} entries")
    augmented = np.concatenate([a, b.reshape(-1, 1)], axis=1)
    reduced, pivots = row_reduce(augmented)
    return reduced, pivots, a.shape[1]


def is_consistent(a: np.ndarray, b: np.ndarray) -> bool:
    """True if the linear system ``A x = b`` has at least one solution."""
    _, pivots, num_cols = _reduced_augmented(a, b)
    return num_cols not in pivots


def solve(a: np.ndarray, b: np.ndarray) -> np.ndarray | None:
    """One solution of ``A x = b`` over GF(2), or ``None`` if inconsistent.

    Free variables are set to zero, so the returned solution is the unique
    one whose support lies in the pivot columns.
    """
    reduced, pivots, num_cols = _reduced_augmented(a, b)
    if num_cols in pivots:
        return None
    solution = np.zeros(num_cols, dtype=np.uint8)
    for row_index, col in enumerate(pivots):
        solution[col] = reduced[row_index, num_cols]
    return solution


def nullspace(matrix: np.ndarray) -> np.ndarray:
    """A basis of the right nullspace, one basis vector per row.

    Returns a ``(dim, cols)`` array; ``dim`` may be zero.
    """
    a = _validated(matrix, 2)
    reduced, pivots = row_reduce(a)
    cols = a.shape[1]
    free_columns = [c for c in range(cols) if c not in pivots]
    basis = np.zeros((len(free_columns), cols), dtype=np.uint8)
    for basis_index, free_col in enumerate(free_columns):
        basis[basis_index, free_col] = 1
        for row_index, pivot_col in enumerate(pivots):
            if reduced[row_index, free_col]:
                basis[basis_index, pivot_col] = 1
    return basis
