"""Dense linear algebra over GF(2).

Matrices are two-dimensional ``numpy`` arrays of dtype ``uint8`` containing
0/1 entries; vectors are one-dimensional.  All arithmetic is modulo 2.

This module is the mathematical core of the repository: the on-die ECC
encoder/decoder (:mod:`repro.ecc.linear_code`), the ground-truth at-risk-set
computation (:mod:`repro.analysis.atrisk`), and BEEP's data-pattern crafting
all reduce to GF(2) matrix operations implemented here.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "identity",
    "zeros",
    "matmul",
    "matvec",
    "add",
    "row_reduce",
    "rank",
    "solve",
    "is_consistent",
    "nullspace",
    "is_bit_matrix",
]


def is_bit_matrix(matrix: np.ndarray) -> bool:
    """True if ``matrix`` contains only 0/1 entries."""
    arr = np.asarray(matrix)
    return bool(np.all((arr == 0) | (arr == 1)))


def _validated(matrix: np.ndarray, ndim: int) -> np.ndarray:
    arr = np.asarray(matrix, dtype=np.uint8)
    if arr.ndim != ndim:
        raise ValueError(f"expected a {ndim}-dimensional array, got shape {arr.shape}")
    return arr


def identity(n: int) -> np.ndarray:
    """The n-by-n identity matrix over GF(2)."""
    return np.eye(n, dtype=np.uint8)


def zeros(rows: int, cols: int) -> np.ndarray:
    """A rows-by-cols zero matrix."""
    return np.zeros((rows, cols), dtype=np.uint8)


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product modulo 2."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    # Accumulate in a wide dtype to avoid uint8 overflow, then reduce mod 2.
    return (a.astype(np.int64) @ b.astype(np.int64) % 2).astype(np.uint8)


def matvec(a: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Matrix-vector product modulo 2."""
    return matmul(_validated(a, 2), np.asarray(v, dtype=np.uint8).reshape(-1, 1)).reshape(-1)


def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise sum modulo 2 (XOR)."""
    return np.bitwise_xor(np.asarray(a, dtype=np.uint8), np.asarray(b, dtype=np.uint8))


def _pack_rows(matrix: np.ndarray) -> list[int]:
    """Pack each row into a Python integer (bit i = column i)."""
    packed = []
    for row in matrix:
        value = 0
        for col in np.flatnonzero(row):
            value |= 1 << int(col)
        packed.append(value)
    return packed


def _unpack_rows(packed: list[int], cols: int) -> np.ndarray:
    """Inverse of :func:`_pack_rows`."""
    matrix = np.zeros((len(packed), cols), dtype=np.uint8)
    for row_index, value in enumerate(packed):
        while value:
            low = value & -value
            matrix[row_index, low.bit_length() - 1] = 1
            value ^= low
    return matrix


def row_reduce(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Reduced row-echelon form over GF(2).

    Returns ``(rref, pivot_columns)``.  ``matrix`` is not modified.

    Rows are packed into Python integers so the elimination inner loop is
    whole-row XOR — the matrices in this codebase are short and wide
    (parity-check shaped), which this representation suits well.
    """
    arr = _validated(matrix, 2)
    rows, cols = arr.shape
    work = _pack_rows(arr)
    pivot_columns: list[int] = []
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        mask = 1 << col
        source = next((r for r in range(pivot_row, rows) if work[r] & mask), None)
        if source is None:
            continue
        work[pivot_row], work[source] = work[source], work[pivot_row]
        pivot_value = work[pivot_row]
        for row in range(rows):
            if row != pivot_row and work[row] & mask:
                work[row] ^= pivot_value
        pivot_columns.append(col)
        pivot_row += 1
    return _unpack_rows(work, cols), pivot_columns


def rank(matrix: np.ndarray) -> int:
    """Rank of a matrix over GF(2)."""
    _, pivots = row_reduce(matrix)
    return len(pivots)


def _reduced_augmented(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, list[int], int]:
    a = _validated(a, 2)
    b = np.asarray(b, dtype=np.uint8).reshape(-1)
    if b.shape[0] != a.shape[0]:
        raise ValueError(f"shape mismatch: A has {a.shape[0]} rows, b has {b.shape[0]} entries")
    augmented = np.concatenate([a, b.reshape(-1, 1)], axis=1)
    reduced, pivots = row_reduce(augmented)
    return reduced, pivots, a.shape[1]


def is_consistent(a: np.ndarray, b: np.ndarray) -> bool:
    """True if the linear system ``A x = b`` has at least one solution."""
    _, pivots, num_cols = _reduced_augmented(a, b)
    return num_cols not in pivots


def solve(a: np.ndarray, b: np.ndarray) -> np.ndarray | None:
    """One solution of ``A x = b`` over GF(2), or ``None`` if inconsistent.

    Free variables are set to zero, so the returned solution is the unique
    one whose support lies in the pivot columns.
    """
    reduced, pivots, num_cols = _reduced_augmented(a, b)
    if num_cols in pivots:
        return None
    solution = np.zeros(num_cols, dtype=np.uint8)
    for row_index, col in enumerate(pivots):
        solution[col] = reduced[row_index, num_cols]
    return solution


def nullspace(matrix: np.ndarray) -> np.ndarray:
    """A basis of the right nullspace, one basis vector per row.

    Returns a ``(dim, cols)`` array; ``dim`` may be zero.
    """
    a = _validated(matrix, 2)
    reduced, pivots = row_reduce(a)
    cols = a.shape[1]
    free_columns = [c for c in range(cols) if c not in pivots]
    basis = np.zeros((len(free_columns), cols), dtype=np.uint8)
    for basis_index, free_col in enumerate(free_columns):
        basis[basis_index, free_col] = 1
        for row_index, pivot_col in enumerate(pivots):
            if reduced[row_index, free_col]:
                basis[basis_index, pivot_col] = 1
    return basis
