"""Structural analysis of linear block codes.

These routines characterize a code the way the paper's §2.5.2 discussion
does: minimum distance, syndrome space coverage, and the *miscorrection
profile* — for every uncorrectable pattern weight, how many patterns alias
onto a correctable syndrome and where the resulting indirect errors land
(cf. Pae et al., "Minimal Aliasing Single-Error-Correction Codes", which the
paper cites as [142]).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.ecc import gf2
from repro.ecc.linear_code import SystematicCode
from repro.ecc.syndrome import analyze_error_pattern

__all__ = [
    "aliasing_pairs_for_target",
    "minimum_distance",
    "weight_distribution",
    "MiscorrectionProfile",
    "miscorrection_profile",
    "syndrome_coverage",
]


def aliasing_pairs_for_target(code: SystematicCode, target: int) -> tuple[tuple[int, int], ...]:
    """Weight-2 pre-correction explanations of an indirect error at ``target``.

    An indirect error at codeword position ``target`` requires an error
    pattern whose syndrome equals ``H[target]``; the weight-2 candidates
    are exactly the pairs ``{a, b}`` with ``H[a] xor H[b] == H[target]``.
    Pure in (parity-check matrix, target) — BEEP's hypothesis expansion
    memoizes it per code through :mod:`repro.analysis.memo`.
    """
    if not 0 <= target < code.n:
        raise IndexError(f"target {target} out of range [0, {code.n})")
    columns = code.column_ints
    index = {value: position for position, value in enumerate(columns)}
    target_column = columns[target]
    pairs: list[tuple[int, int]] = []
    for a in range(code.n):
        partner = index.get(target_column ^ columns[a])
        if partner is not None and partner > a:
            pairs.append((a, partner))
    return tuple(pairs)


def minimum_distance(code: SystematicCode, max_weight: int | None = None) -> int:
    """Minimum distance via nullspace search over codeword weights.

    Exhaustive over message space for small ``k`` (<= 16); for larger codes
    pass ``max_weight`` to bound the search over low-weight column
    combinations instead.
    """
    if code.k <= 16:
        best = code.n + 1
        generator = code.generator_matrix_t
        for message in range(1, 1 << code.k):
            bits = np.array([(message >> i) & 1 for i in range(code.k)], dtype=np.uint8)
            weight = int(gf2.matmul(bits.reshape(1, -1), generator).sum())
            best = min(best, weight)
        return best
    limit = max_weight if max_weight is not None else 4
    h = code.parity_check_matrix
    for weight in range(1, limit + 1):
        for pattern in combinations(range(code.n), weight):
            syndrome = np.zeros(code.p, dtype=np.uint8)
            for position in pattern:
                syndrome ^= h[:, position]
            if not syndrome.any():
                return weight
    raise ValueError(f"minimum distance exceeds search bound {limit}")


def weight_distribution(code: SystematicCode) -> dict[int, int]:
    """Codeword weight enumerator (exhaustive; requires k <= 16)."""
    if code.k > 16:
        raise ValueError("weight distribution is exhaustive; requires k <= 16")
    distribution: dict[int, int] = {}
    generator = code.generator_matrix_t
    for message in range(1 << code.k):
        bits = np.array([(message >> i) & 1 for i in range(code.k)], dtype=np.uint8)
        weight = int(gf2.matmul(bits.reshape(1, -1), generator).sum())
        distribution[weight] = distribution.get(weight, 0) + 1
    return distribution


@dataclass(frozen=True)
class MiscorrectionProfile:
    """Aliasing statistics for uncorrectable patterns of a fixed weight.

    Attributes:
        pattern_weight: weight of the enumerated pre-correction patterns.
        total_patterns: number of patterns enumerated.
        miscorrecting_patterns: how many of them alias to a correctable
            syndrome (and therefore trigger an indirect error).
        target_counts: for each codeword position, how many patterns
            miscorrect onto it.
    """

    pattern_weight: int
    total_patterns: int
    miscorrecting_patterns: int
    target_counts: tuple[int, ...]

    @property
    def miscorrection_rate(self) -> float:
        if self.total_patterns == 0:
            return 0.0
        return self.miscorrecting_patterns / self.total_patterns


def miscorrection_profile(code: SystematicCode, pattern_weight: int) -> MiscorrectionProfile:
    """Enumerate all patterns of a given weight and tally miscorrections."""
    if pattern_weight < 1:
        raise ValueError("pattern weight must be >= 1")
    target_counts = [0] * code.n
    total = 0
    miscorrecting = 0
    for pattern in combinations(range(code.n), pattern_weight):
        total += 1
        outcome = analyze_error_pattern(code, frozenset(pattern))
        newly_flipped = outcome.flipped - outcome.pre_correction
        if newly_flipped:
            miscorrecting += 1
            for position in newly_flipped:
                target_counts[position] += 1
    return MiscorrectionProfile(
        pattern_weight=pattern_weight,
        total_patterns=total,
        miscorrecting_patterns=miscorrecting,
        target_counts=tuple(target_counts),
    )


def syndrome_coverage(code: SystematicCode) -> tuple[int, int]:
    """(matched, total) nonzero syndromes.

    A (71, 64) SEC code matches 71 of 127 nonzero syndromes; the remaining
    56 are detected-but-uncorrectable.  The gap determines how often an
    uncorrectable pattern aliases versus is detected.
    """
    total = (1 << code.p) - 1
    matched = len({s for s in range(1, 1 << code.p) if code.correction_for_syndrome(s)})
    return matched, total
