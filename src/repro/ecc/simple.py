"""Degenerate and toy codes used as substrates in tests and baselines.

``NoEccCode`` models a memory chip *without* on-die ECC — the baseline world
the paper contrasts against (its §4: "without on-die ECC, an at-risk bit is
identified when the bit fails").
"""

from __future__ import annotations

import numpy as np

from repro.ecc.linear_code import SystematicCode

__all__ = ["NoEccCode", "single_parity_code", "repetition_extension_code"]


class NoEccCode(SystematicCode):
    """The identity code: no parity bits, no correction, ``n == k``.

    Every decode returns the stored bits untouched, so post-correction
    errors equal pre-correction errors — the memory-without-on-die-ECC
    reference point.
    """

    def __init__(self, k: int) -> None:
        super().__init__(
            np.zeros((0, k), dtype=np.uint8),
            correction_capability=0,
            name=f"({k},{k})no-ecc",
        )


def single_parity_code(k: int) -> SystematicCode:
    """Single-parity-check code: detects (never corrects) odd-weight errors.

    Correction capability is zero, so the decoder flags nonzero syndromes as
    detected-uncorrectable and leaves data untouched.
    """
    parity = np.ones((1, k), dtype=np.uint8)
    return SystematicCode(parity, correction_capability=0, name=f"({k + 1},{k})parity")


def repetition_extension_code(copies: int) -> SystematicCode:
    """A 1-data-bit code storing ``copies - 1`` extra copies of the bit.

    With ``copies = 3`` this is the (3, 1) repetition code, correcting one
    error.  Used as the smallest nontrivial SEC substrate in property tests.
    """
    if copies < 3:
        raise ValueError("a repetition code needs at least 3 copies to correct an error")
    parity = np.ones((copies - 1, 1), dtype=np.uint8)
    return SystematicCode(parity, correction_capability=1, name=f"({copies},1)repetition")
