"""Single-error-correcting (SEC) Hamming code construction.

The paper evaluates randomly-generated systematic SEC Hamming codes in the
(71, 64) and (136, 128) configurations used by real DRAM on-die ECC
(its §7.1.2).  A systematic SEC code over ``p`` parity bits is fully
determined by choosing, for each data bit, a distinct parity-check column of
Hamming weight at least two (weight-one columns are reserved for the parity
bits themselves, and all columns must be distinct and nonzero for single
error correction).
"""

from __future__ import annotations

import numpy as np

from repro.ecc.linear_code import SystematicCode
from repro.utils.bits import int_to_bits

__all__ = [
    "parity_bits_for",
    "random_sec_code",
    "canonical_sec_code",
    "paper_example_code",
    "minimal_aliasing_code",
    "SEC_71_64",
    "SEC_136_128",
]

#: Common DRAM on-die ECC geometries: dataword length -> (n, k) label.
SEC_71_64 = 64
SEC_136_128 = 128


def parity_bits_for(k: int) -> int:
    """Minimum number of parity bits for a SEC code with ``k`` data bits.

    Solves the Hamming bound ``2**p - p - 1 >= k``.

    >>> parity_bits_for(64)
    7
    >>> parity_bits_for(128)
    8
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    p = 2
    while (1 << p) - p - 1 < k:
        p += 1
    return p


def _eligible_columns(p: int) -> list[int]:
    """All nonzero ``p``-bit values of weight >= 2, in increasing order."""
    return [v for v in range(1, 1 << p) if bin(v).count("1") >= 2]


def random_sec_code(k: int, rng: np.random.Generator, p: int | None = None) -> SystematicCode:
    """A uniformly-random systematic SEC Hamming code with ``k`` data bits.

    Column arrangement is a free design parameter (paper §2.5.2); this
    samples the data columns uniformly without replacement from all
    weight->=2 nonzero ``p``-bit vectors, mirroring the randomly-generated
    parity-check matrices of the paper's Monte-Carlo methodology.
    """
    num_parity = parity_bits_for(k) if p is None else p
    candidates = _eligible_columns(num_parity)
    if len(candidates) < k:
        raise ValueError(
            f"{num_parity} parity bits admit only {len(candidates)} data columns, need {k}"
        )
    chosen = rng.choice(len(candidates), size=k, replace=False)
    parity = np.zeros((num_parity, k), dtype=np.uint8)
    for data_bit, index in enumerate(chosen):
        parity[:, data_bit] = int_to_bits(candidates[int(index)], num_parity)
    return SystematicCode(parity, correction_capability=1, name=f"({k + num_parity},{k})SEC")


def canonical_sec_code(k: int, p: int | None = None) -> SystematicCode:
    """The deterministic SEC code using the lowest eligible columns in order.

    Useful for reproducible documentation examples and as a fixed reference
    code in tests.
    """
    num_parity = parity_bits_for(k) if p is None else p
    candidates = _eligible_columns(num_parity)
    if len(candidates) < k:
        raise ValueError(
            f"{num_parity} parity bits admit only {len(candidates)} data columns, need {k}"
        )
    parity = np.zeros((num_parity, k), dtype=np.uint8)
    for data_bit in range(k):
        parity[:, data_bit] = int_to_bits(candidates[data_bit], num_parity)
    return SystematicCode(parity, correction_capability=1, name=f"({k + num_parity},{k})SEC-canonical")


def minimal_aliasing_code(
    k: int,
    rng: np.random.Generator,
    trials: int = 16,
    miscorrection_weight: int = 2,
) -> SystematicCode:
    """Search for a column arrangement with few data-bit miscorrections.

    The paper's §2.5.2 notes that "some column arrangements can lead to
    more miscorrections than others" (citing Pae et al. [142]).  This
    randomized search scores ``trials`` random systematic SEC codes by how
    many weight-``miscorrection_weight`` error patterns miscorrect into
    *data* positions — the aliasing that creates controller-visible
    indirect errors — and returns the best.

    This is a design-space tool, not a profiler component: HARP works with
    any arrangement, but a minimal-aliasing code shrinks the indirect
    at-risk set the reactive phase must cover.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    # Imported here to avoid a circular import (code_analysis uses
    # SystematicCode from linear_code, not this module, but keeps the
    # dependency edges one-directional at module load).
    from repro.ecc.code_analysis import miscorrection_profile

    best_code: SystematicCode | None = None
    best_score: int | None = None
    for _ in range(trials):
        candidate = random_sec_code(k, rng)
        profile = miscorrection_profile(candidate, miscorrection_weight)
        score = sum(profile.target_counts[: candidate.k])
        if best_score is None or score < best_score:
            best_code, best_score = candidate, score
    assert best_code is not None
    return SystematicCode(
        best_code.parity_submatrix,
        correction_capability=1,
        name=f"({best_code.n},{best_code.k})SEC-minimal-aliasing",
    )


def paper_example_code() -> SystematicCode:
    """The (7, 4) SEC Hamming code from Equation 1 of the paper.

    The paper lists ``H = [[1,1,1,0,1,0,0], [1,1,0,1,0,1,0], [1,0,1,1,0,0,1]]``
    whose left 4 columns form the parity submatrix.
    """
    parity = np.array(
        [
            [1, 1, 1, 0],
            [1, 1, 0, 1],
            [1, 0, 1, 1],
        ],
        dtype=np.uint8,
    )
    return SystematicCode(parity, correction_capability=1, name="(7,4)SEC-paper")
