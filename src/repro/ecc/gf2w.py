"""Word-parallel (bit-packed) GF(2) linear algebra — the packed kernel tier.

Every operation in :mod:`repro.ecc.gf2` has a drop-in semantic twin here
that works on matrices packed 64 columns to a ``uint64`` word: bit ``i``
of word ``j`` holds column ``64*j + i`` (little-endian within the word,
words ascending).  A ``(rows, cols)`` byte-per-bit matrix becomes a
``(rows, ceil(cols/64))`` word matrix, so the XOR inner loop of Gaussian
elimination touches 64 columns per machine word and the whole row set per
``numpy`` operation::

    columns          0 ........ 63   64 ....... 127  128 ...
    packed row       [  word 0    ]  [  word 1    ]  [ word 2 ...
                      bit 0 = col 0   bit 0 = col 64

Packing goes through ``np.packbits(..., bitorder="little")`` and a
``uint64`` view, so pack/unpack are single vectorized passes; matrix
products use XOR + popcount (``np.bitwise_count``) over the packed words
instead of wide-integer accumulation.

Determinism contract
====================

The packed kernels follow the exact pivot-selection order of the
unpacked reference (scan columns left to right, take the first unreduced
row with a one in the pivot column), so ``row_reduce``/``rank``/
``solve``/``is_consistent``/``nullspace`` here are *bit-identical* to
their :mod:`repro.ecc.gf2` counterparts for every input — the facade in
:mod:`repro.ecc.gf2` dispatches between the tiers freely on that basis
(``REPRO_GF2_TIER`` forces either one; see that module's docstring).
``tests/test_gf2w.py`` property-tests the equivalence over rectangular,
rank-deficient, and multi-word (>64-column) matrices.

:class:`PackedBasis` is the incremental lowest-bit row basis behind the
packed tier of :class:`repro.analysis.atrisk.ChargeSystem`: rows are kept
as packed words, each insertion reduces against the existing pivots with
whole-row XOR, and back-substitution resolves the canonical
free-variables-zero solution — the same algorithm (and therefore the same
canonical solution) as the integer-row basis it mirrors.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "WORD_BITS",
    "words_for",
    "pack_rows",
    "unpack_rows",
    "pack_vector",
    "unpack_vector",
    "row_reduce_packed",
    "row_reduce",
    "rank",
    "solve",
    "solve_many",
    "is_consistent",
    "nullspace",
    "matmul",
    "matmul_packed",
    "matvec",
    "PackedBasis",
]

#: Columns per packed word.
WORD_BITS = 64

_ONE = np.uint64(1)


def words_for(cols: int) -> int:
    """Packed words needed to hold ``cols`` columns."""
    return (int(cols) + WORD_BITS - 1) // WORD_BITS


def pack_rows(matrix: np.ndarray) -> np.ndarray:
    """Pack a ``(rows, cols)`` 0/1 matrix into ``(rows, words)`` uint64.

    Bit ``i`` of word ``j`` is column ``64*j + i``.  Always returns a
    fresh, writable array.
    """
    arr = np.ascontiguousarray(matrix, dtype=np.uint8)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-dimensional array, got shape {arr.shape}")
    rows, cols = arr.shape
    width = words_for(cols) * WORD_BITS
    if width != cols:
        padded = np.zeros((rows, width), dtype=np.uint8)
        padded[:, :cols] = arr
        arr = padded
    packed_bytes = np.packbits(arr, axis=1, bitorder="little")
    return packed_bytes.view(np.dtype("<u8")).astype(np.uint64, copy=False)


def unpack_rows(packed: np.ndarray, cols: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`: ``(rows, words)`` uint64 -> uint8 bits."""
    words = np.ascontiguousarray(packed, dtype=np.dtype("<u8"))
    if words.ndim != 2:
        raise ValueError(f"expected a 2-dimensional array, got shape {words.shape}")
    as_bytes = words.view(np.uint8)
    return np.unpackbits(as_bytes, axis=1, bitorder="little", count=cols)


def pack_vector(vector: np.ndarray) -> np.ndarray:
    """Pack a length-``cols`` 0/1 vector into a ``(words,)`` uint64 row."""
    return pack_rows(np.asarray(vector, dtype=np.uint8).reshape(1, -1))[0]


def unpack_vector(packed: np.ndarray, cols: int) -> np.ndarray:
    """Inverse of :func:`pack_vector`."""
    return unpack_rows(np.asarray(packed, dtype=np.uint64).reshape(1, -1), cols)[0]


def _column_word_bit(col: int) -> tuple[int, np.uint64]:
    """(word index, single-bit mask) addressing one column."""
    return col // WORD_BITS, _ONE << np.uint64(col % WORD_BITS)


def row_reduce_packed(
    packed: np.ndarray, cols: int
) -> tuple[np.ndarray, list[int]]:
    """Reduced row-echelon form of a packed matrix, in place on a copy.

    Returns ``(rref_packed, pivot_columns)``.  Pivot selection matches
    the unpacked reference exactly: scan columns in ascending order and
    take the first row at or below the current pivot row with a one in
    that column; eliminate the column from *every* other row.
    """
    work = np.array(packed, dtype=np.uint64, copy=True)
    rows = work.shape[0]
    pivot_columns: list[int] = []
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        word, bit = _column_word_bit(col)
        column = work[:, word] & bit
        candidates = np.nonzero(column[pivot_row:])[0]
        if not candidates.size:
            continue
        source = pivot_row + int(candidates[0])
        if source != pivot_row:
            work[[pivot_row, source]] = work[[source, pivot_row]]
            column[[pivot_row, source]] = column[[source, pivot_row]]
        # Whole-matrix elimination: one boolean mask selects every row
        # holding the pivot column, one broadcast XOR clears them all.
        hits = column != 0
        hits[pivot_row] = False
        if hits.any():
            work[hits] ^= work[pivot_row]
        pivot_columns.append(col)
        pivot_row += 1
    return work, pivot_columns


def row_reduce(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Packed-tier twin of :func:`repro.ecc.gf2.row_reduce`."""
    arr = np.asarray(matrix, dtype=np.uint8)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-dimensional array, got shape {arr.shape}")
    cols = arr.shape[1]
    reduced, pivots = row_reduce_packed(pack_rows(arr), cols)
    return unpack_rows(reduced, cols), pivots


def rank(matrix: np.ndarray) -> int:
    """Packed-tier twin of :func:`repro.ecc.gf2.rank`."""
    arr = np.asarray(matrix, dtype=np.uint8)
    if arr.ndim != 2:
        raise ValueError(f"expected a 2-dimensional array, got shape {arr.shape}")
    _, pivots = row_reduce_packed(pack_rows(arr), arr.shape[1])
    return len(pivots)


def _reduced_augmented(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, list[int], int]:
    a = np.asarray(a, dtype=np.uint8)
    if a.ndim != 2:
        raise ValueError(f"expected a 2-dimensional array, got shape {a.shape}")
    b = np.asarray(b, dtype=np.uint8).reshape(-1)
    if b.shape[0] != a.shape[0]:
        raise ValueError(f"shape mismatch: A has {a.shape[0]} rows, b has {b.shape[0]} entries")
    augmented = np.concatenate([a, b.reshape(-1, 1)], axis=1)
    cols = augmented.shape[1]
    reduced, pivots = row_reduce_packed(pack_rows(augmented), cols)
    return unpack_rows(reduced, cols), pivots, a.shape[1]


def is_consistent(a: np.ndarray, b: np.ndarray) -> bool:
    """Packed-tier twin of :func:`repro.ecc.gf2.is_consistent`."""
    _, pivots, num_cols = _reduced_augmented(a, b)
    return num_cols not in pivots


def solve(a: np.ndarray, b: np.ndarray) -> np.ndarray | None:
    """Packed-tier twin of :func:`repro.ecc.gf2.solve`."""
    reduced, pivots, num_cols = _reduced_augmented(a, b)
    if num_cols in pivots:
        return None
    solution = np.zeros(num_cols, dtype=np.uint8)
    for row_index, col in enumerate(pivots):
        solution[col] = reduced[row_index, num_cols]
    return solution


def solve_many(
    a: np.ndarray, rhs: np.ndarray, *, with_pivots: bool = False
) -> np.ndarray | None | tuple[np.ndarray | None, list[int]]:
    """Solve ``A x = b`` for every column ``b`` of ``rhs`` in one elimination.

    ``rhs`` has shape ``(rows, planes)``; returns ``(planes, cols)``
    solutions (each bit-identical to :func:`solve` on that column), or
    ``None`` if *any* plane is inconsistent.  One RREF of the augmented
    system replaces ``planes`` separate eliminations — the multi-plane
    fast path :class:`repro.ecc.reverse_engineering.EccReverseEngineer`
    solves all parity planes with.  With ``with_pivots=True`` the return
    value is ``(solutions_or_None, pivot_columns)`` so callers can also
    read off ``rank(A)`` without a second elimination.
    """
    a = np.asarray(a, dtype=np.uint8)
    rhs = np.asarray(rhs, dtype=np.uint8)
    if a.ndim != 2 or rhs.ndim != 2 or rhs.shape[0] != a.shape[0]:
        raise ValueError(f"shape mismatch: A {a.shape} vs rhs {rhs.shape}")
    rows, cols = a.shape
    planes = rhs.shape[1]
    augmented = np.concatenate([a, rhs], axis=1)
    # Eliminate over A's columns only (the whole packed rows — RHS words
    # included — ride along in each XOR): a pivot then never lands in an
    # RHS plane, so inconsistency shows up as a zero-A row with a one
    # left anywhere in its RHS part.
    work, pivots = row_reduce_packed(pack_rows(augmented), cols)
    reduced = unpack_rows(work, cols + planes)
    pivot_row = len(pivots)
    if pivot_row < rows and reduced[pivot_row:, cols:].any():
        solutions = None
    else:
        solutions = np.zeros((planes, cols), dtype=np.uint8)
        for row_index, col in enumerate(pivots):
            solutions[:, col] = reduced[row_index, cols:]
    return (solutions, pivots) if with_pivots else solutions


def nullspace(matrix: np.ndarray) -> np.ndarray:
    """Packed-tier twin of :func:`repro.ecc.gf2.nullspace`."""
    a = np.asarray(matrix, dtype=np.uint8)
    if a.ndim != 2:
        raise ValueError(f"expected a 2-dimensional array, got shape {a.shape}")
    cols = a.shape[1]
    reduced_packed, pivots = row_reduce_packed(pack_rows(a), cols)
    reduced = unpack_rows(reduced_packed, cols)
    free_columns = [c for c in range(cols) if c not in pivots]
    basis = np.zeros((len(free_columns), cols), dtype=np.uint8)
    for basis_index, free_col in enumerate(free_columns):
        basis[basis_index, free_col] = 1
        for row_index, pivot_col in enumerate(pivots):
            if reduced[row_index, free_col]:
                basis[basis_index, pivot_col] = 1
    return basis


# ----------------------------------------------------------------------
# Packed matrix products: XOR + popcount
# ----------------------------------------------------------------------

#: Row-block size bounding the (block, n, words) popcount temporary.
_MATMUL_BLOCK = 4096


def matmul_packed(a_packed: np.ndarray, bt_packed: np.ndarray) -> np.ndarray:
    """GF(2) product from packed operands: ``A`` rows x ``B^T`` rows.

    ``a_packed`` is ``pack_rows(A)`` with shape ``(m, words)``;
    ``bt_packed`` is ``pack_rows(B.T)`` with shape ``(n, words)`` over the
    same inner dimension.  Each output bit is the parity of the popcount
    of the AND of one row of each — all words at once.
    """
    m = a_packed.shape[0]
    n = bt_packed.shape[0]
    out = np.empty((m, n), dtype=np.uint8)
    for start in range(0, m, _MATMUL_BLOCK):
        block = a_packed[start : start + _MATMUL_BLOCK]
        counts = np.bitwise_count(block[:, None, :] & bt_packed[None, :, :])
        out[start : start + _MATMUL_BLOCK] = (
            counts.sum(axis=2, dtype=np.uint64) & _ONE
        ).astype(np.uint8)
    return out


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Packed-tier twin of :func:`repro.ecc.gf2.matmul` (0/1 inputs)."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch for matmul: {a.shape} @ {b.shape}")
    return matmul_packed(pack_rows(a), pack_rows(np.ascontiguousarray(b.T)))


def matvec(a: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Packed-tier twin of :func:`repro.ecc.gf2.matvec`."""
    a = np.asarray(a, dtype=np.uint8)
    if a.ndim != 2:
        raise ValueError(f"expected a 2-dimensional array, got shape {a.shape}")
    v = np.asarray(v, dtype=np.uint8).reshape(-1)
    if v.shape[0] != a.shape[1]:
        raise ValueError(f"shape mismatch for matvec: {a.shape} @ {v.shape}")
    counts = np.bitwise_count(pack_rows(a) & pack_vector(v)[None, :])
    return (counts.sum(axis=1, dtype=np.uint64) & _ONE).astype(np.uint8)


# ----------------------------------------------------------------------
# Incremental packed row basis (the ChargeSystem packed tier)
# ----------------------------------------------------------------------


class PackedBasis:
    """Lowest-bit GF(2) row basis over packed ``uint64`` rows.

    The packed-tier twin of the integer-row basis inside
    :class:`repro.analysis.atrisk.ChargeSystem`: each inserted row is
    reduced against the existing pivots (whole-row XOR over the packed
    words), a surviving row joins the basis with its lowest set bit as
    pivot, and :meth:`solution_words` back-substitutes the canonical
    free-variables-zero solution.  The algorithm is identical to the
    integer basis, so the resulting pivots, feasibility, and canonical
    solution are bit-identical for every insertion sequence.

    Rows live in one capacity-doubling ``(capacity, words)`` array so a
    fork (:meth:`copy`) is two array copies, mirroring the cheap-fork
    contract the crafted-pattern epochs rely on.
    """

    __slots__ = ("words", "_rows", "_rhs", "_pivot_word", "_pivot_bit", "count", "infeasible")

    def __init__(self, cols: int) -> None:
        self.words = words_for(cols)
        capacity = 8
        self._rows = np.zeros((capacity, self.words), dtype=np.uint64)
        self._rhs = np.zeros(capacity, dtype=np.uint8)
        self._pivot_word = np.zeros(capacity, dtype=np.intp)
        self._pivot_bit = np.zeros(capacity, dtype=np.uint64)
        self.count = 0
        self.infeasible = False

    def copy(self) -> PackedBasis:
        fork = PackedBasis.__new__(PackedBasis)
        fork.words = self.words
        fork._rows = self._rows.copy()
        fork._rhs = self._rhs.copy()
        fork._pivot_word = self._pivot_word.copy()
        fork._pivot_bit = self._pivot_bit.copy()
        fork.count = self.count
        fork.infeasible = self.infeasible
        return fork

    def _grow(self) -> None:
        def doubled(array):
            grown = np.zeros((array.shape[0] * 2,) + array.shape[1:], dtype=array.dtype)
            grown[: array.shape[0]] = array
            return grown

        self._rows = doubled(self._rows)
        self._rhs = doubled(self._rhs)
        self._pivot_word = doubled(self._pivot_word)
        self._pivot_bit = doubled(self._pivot_bit)

    def insert(self, row: np.ndarray, rhs: int) -> None:
        """Reduce one packed constraint row against the basis; extend or refute."""
        if self.infeasible:
            return
        row = np.array(row, dtype=np.uint64, copy=True).reshape(self.words)
        rhs = int(rhs) & 1
        for index in range(self.count):
            if row[self._pivot_word[index]] & self._pivot_bit[index]:
                row ^= self._rows[index]
                rhs ^= int(self._rhs[index])
        nonzero = np.nonzero(row)[0]
        if not nonzero.size:
            if rhs:
                self.infeasible = True
            return
        if self.count >= self._rows.shape[0]:
            self._grow()
        word = int(nonzero[0])
        value = row[word]
        index = self.count
        self._rows[index] = row
        self._rhs[index] = rhs
        self._pivot_word[index] = word
        self._pivot_bit[index] = value & (~value + _ONE)  # lowest set bit
        self.count += 1

    def insert_bit(self, col: int, rhs: int) -> None:
        """Insert a singleton row (one column set)."""
        row = np.zeros(self.words, dtype=np.uint64)
        word, bit = _column_word_bit(col)
        row[word] = bit
        self.insert(row, rhs)

    def solution_words(self) -> np.ndarray | None:
        """Canonical solution as packed words (free variables zero), or None."""
        if self.infeasible:
            return None
        solution = np.zeros(self.words, dtype=np.uint64)
        # Reverse order: later pivots are resolved before rows that may
        # reference them; a row's own pivot bit is still zero in
        # ``solution`` when its parity is taken, exactly as in the
        # integer basis.
        for index in range(self.count - 1, -1, -1):
            parity = int(np.bitwise_count(self._rows[index] & solution).sum()) & 1
            if int(self._rhs[index]) ^ parity:
                solution[self._pivot_word[index]] |= self._pivot_bit[index]
        return solution

    def solution_int(self) -> int | None:
        """Canonical solution as an integer bitmask, or None."""
        solution = self.solution_words()
        if solution is None:
            return None
        return int.from_bytes(
            np.ascontiguousarray(solution, dtype=np.dtype("<u8")).tobytes(), "little"
        )

    def pivot_triples(self) -> list[tuple[int, int, int]]:
        """The basis as integer ``(pivot bit, row, rhs)`` triples.

        Matches the integer basis' internal representation bit for bit —
        used by tests and debugging, not the hot path.
        """
        triples = []
        for index in range(self.count):
            row = int.from_bytes(
                np.ascontiguousarray(self._rows[index], dtype=np.dtype("<u8")).tobytes(),
                "little",
            )
            pivot = int(self._pivot_bit[index]) << (WORD_BITS * int(self._pivot_word[index]))
            triples.append((pivot, row, int(self._rhs[index])))
        return triples
