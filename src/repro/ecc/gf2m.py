"""Finite extension fields GF(2^m) via exp/log tables.

Field elements are represented as integers in ``[0, 2^m)`` whose bits are
the coefficients of a polynomial over GF(2) reduced modulo a fixed primitive
polynomial.  The generator ``alpha`` is the class of ``x``, so
``alpha ** i == exp_table[i]``.

This substrate exists to construct BCH parity-check matrices
(:mod:`repro.ecc.bch`) — the stronger on-die ECC the paper names as the
natural generalization of its analysis (its footnote 9).
"""

from __future__ import annotations

from functools import lru_cache

__all__ = ["GF2m", "PRIMITIVE_POLYNOMIALS"]

#: Primitive polynomials over GF(2), indexed by degree m.  Value encodes the
#: polynomial bitmask including the leading term, e.g. x^4 + x + 1 -> 0b10011.
PRIMITIVE_POLYNOMIALS: dict[int, int] = {
    2: 0b111,
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,
    11: 0b100000000101,
    12: 0b1000001010011,
}


class GF2m:
    """Arithmetic in GF(2^m) for 2 <= m <= 12.

    >>> field = GF2m(4)
    >>> field.multiply(0b0010, 0b0010)  # alpha * alpha == alpha^2
    4
    >>> field.power(field.alpha, field.order)  # alpha^(2^m - 1) == 1
    1
    """

    def __init__(self, m: int) -> None:
        if m not in PRIMITIVE_POLYNOMIALS:
            raise ValueError(f"unsupported field degree m={m}")
        self.m = m
        self.size = 1 << m
        #: multiplicative group order, 2^m - 1
        self.order = self.size - 1
        self.primitive_polynomial = PRIMITIVE_POLYNOMIALS[m]
        self.alpha = 0b10
        self._exp, self._log = self._build_tables()

    def _build_tables(self) -> tuple[list[int], list[int]]:
        exp = [0] * (2 * self.order)
        log = [0] * self.size
        value = 1
        for i in range(self.order):
            exp[i] = value
            log[value] = i
            value <<= 1
            if value & self.size:
                value ^= self.primitive_polynomial
        if value != 1:
            raise AssertionError(
                f"polynomial {self.primitive_polynomial:#b} is not primitive for m={self.m}"
            )
        # Duplicate the table so exp lookups never need an explicit modulo.
        for i in range(self.order, 2 * self.order):
            exp[i] = exp[i - self.order]
        return exp, log

    def _check(self, value: int) -> int:
        if not 0 <= value < self.size:
            raise ValueError(f"{value} is not an element of GF(2^{self.m})")
        return value

    def add(self, a: int, b: int) -> int:
        """Field addition (XOR of coefficient vectors)."""
        return self._check(a) ^ self._check(b)

    def multiply(self, a: int, b: int) -> int:
        """Field multiplication via log/antilog tables."""
        if self._check(a) == 0 or self._check(b) == 0:
            return 0
        return self._exp[self._log[a] + self._log[b]]

    def inverse(self, a: int) -> int:
        """Multiplicative inverse; raises on zero."""
        if self._check(a) == 0:
            raise ZeroDivisionError("0 has no multiplicative inverse")
        return self._exp[self.order - self._log[a]]

    def divide(self, a: int, b: int) -> int:
        """Field division ``a / b``."""
        return self.multiply(a, self.inverse(b))

    def power(self, a: int, exponent: int) -> int:
        """``a`` raised to an arbitrary (possibly negative) integer power."""
        if self._check(a) == 0:
            if exponent <= 0:
                raise ZeroDivisionError("0 cannot be raised to a non-positive power")
            return 0
        reduced = (self._log[a] * exponent) % self.order
        return self._exp[reduced]

    def alpha_power(self, exponent: int) -> int:
        """``alpha ** exponent`` (exponent taken modulo the group order)."""
        return self._exp[exponent % self.order]

    def log(self, a: int) -> int:
        """Discrete log base alpha; raises on zero."""
        if self._check(a) == 0:
            raise ValueError("0 has no discrete logarithm")
        return self._log[a]

    def trace(self, a: int) -> int:
        """Field trace Tr(a) = a + a^2 + ... + a^(2^(m-1)), always 0 or 1."""
        total = 0
        value = self._check(a)
        for _ in range(self.m):
            total ^= value
            value = self.multiply(value, value)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GF2m({self.m})"


@lru_cache(maxsize=None)
def field(m: int) -> GF2m:
    """Memoized field constructor (table construction is O(2^m))."""
    return GF2m(m)
