"""Double-error-correcting (DEC) BCH codes in systematic form.

The paper's analysis assumes SEC on-die ECC but notes (footnote 9) that it
generalizes to stronger block codes such as DEC BCH.  This module builds
systematic DEC BCH codes so the profiling framework can be exercised with an
on-die correction capability of ``N = 2`` — and hence up to two concurrent
indirect errors, requiring a stronger secondary ECC (paper §6.3.2).

Construction: the primitive narrow-sense BCH code of length ``2^m - 1`` with
designed distance 5 has parity-check matrix rows ``alpha^j`` and
``alpha^{3j}`` expanded to bits.  We row-reduce that matrix, move its pivot
positions to the parity end of the word (coordinate permutation preserves
distance), convert to ``[P | I]`` form, and shorten to the requested
dataword length (shortening also preserves distance).
"""

from __future__ import annotations

import numpy as np

from repro.ecc import gf2
from repro.ecc.gf2m import GF2m, field
from repro.ecc.linear_code import SystematicCode
from repro.utils.bits import int_to_bits

__all__ = ["bch_dec_code", "bch_field_degree_for"]


def bch_field_degree_for(k: int) -> int:
    """Smallest field degree m such that a DEC BCH code has >= k data bits.

    The primitive DEC BCH code of length ``2^m - 1`` has ``2m`` parity bits
    (for m >= 4), leaving ``2^m - 1 - 2m`` data bits.

    >>> bch_field_degree_for(16)
    5
    >>> bch_field_degree_for(64)
    7
    """
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    m = 4
    while (1 << m) - 1 - 2 * m < k:
        m += 1
    return m


def _raw_parity_check_matrix(fld: GF2m) -> np.ndarray:
    """The ``(2m, 2^m - 1)`` binary matrix with columns [alpha^j; alpha^3j]."""
    m = fld.m
    n = fld.order
    matrix = np.zeros((2 * m, n), dtype=np.uint8)
    for j in range(n):
        matrix[:m, j] = int_to_bits(fld.alpha_power(j), m)
        matrix[m:, j] = int_to_bits(fld.alpha_power(3 * j), m)
    return matrix


def bch_dec_code(k: int, m: int | None = None) -> SystematicCode:
    """A systematic double-error-correcting BCH code with ``k`` data bits.

    Args:
        k: dataword length (the code is shortened to exactly this length).
        m: optional field degree override; defaults to the smallest field
            that fits ``k`` data bits.

    Returns:
        A :class:`SystematicCode` with ``t = 2``.
    """
    if m is None:
        m = bch_field_degree_for(k)
    fld = field(m)
    raw = _raw_parity_check_matrix(fld)
    reduced, pivots = gf2.row_reduce(raw)
    num_parity = len(pivots)
    max_k = fld.order - num_parity
    if k > max_k:
        raise ValueError(f"m={m} supports at most {max_k} data bits, requested {k}")
    non_pivots = [c for c in range(fld.order) if c not in pivots]
    # Reorder coordinates: data (non-pivot) columns first, pivot columns
    # last.  In the reduced matrix the pivot columns form an identity, so
    # the permuted matrix is already [P_full | I].
    rows_with_pivots = reduced[:num_parity, :]
    parity_full = rows_with_pivots[:, non_pivots]
    # Shorten: keep the first k data coordinates (drop the rest).
    parity = np.ascontiguousarray(parity_full[:, :k])
    return SystematicCode(
        parity,
        correction_capability=2,
        name=f"({k + num_parity},{k})BCH-DEC",
    )
