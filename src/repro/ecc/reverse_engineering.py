"""Black-box on-die ECC reverse engineering (BEER-lite).

HARP-A needs the on-die ECC parity-check matrix, which the paper obtains
via manufacturer support or the BEER methodology [145]: induce known
pre-correction error patterns through data-retention testing and infer the
code from the miscorrections it produces.  This module implements the
inference core for systematic SEC codes.

Every *positive* observation is linear in the unknown data columns
``x_0..x_{k-1}`` (each a ``p``-bit vector; parity columns are the known
unit vectors under the systematic layout):

* pair ``{i, j}`` of data bits miscorrecting onto data bit ``m``:
  ``x_i + x_j + x_m = 0``;
* pair ``{i, j}`` miscorrecting onto parity bit ``q``:
  ``x_i + x_j = e_q`` — these inhomogeneous constraints anchor the
  otherwise scale-free homogeneous system;
* pair ``{i, parity q}`` miscorrecting onto data ``m``:
  ``x_i + x_m = e_q``;
* pair ``{i, parity q}`` miscorrecting onto parity ``q'``:
  ``x_i = e_q + e_q'``.

Detected-but-uncorrectable outcomes are *disequalities* (the syndrome
matches no column) and are not used.  The constraints decompose per bit
plane: one shared coefficient matrix over the ``k`` unknowns with a
different right-hand side per plane, solved by Gaussian elimination.
Recovery is exact and certified: the solver reports success only when the
system pins every column uniquely (full rank).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np

from repro.ecc import gf2, gf2w
from repro.ecc.linear_code import SystematicCode
from repro.ecc.syndrome import analyze_error_pattern

__all__ = ["Observation", "EccReverseEngineer", "simulate_injection", "reverse_engineer"]

#: An injector maps a pre-correction error pattern (codeword positions) to
#: the post-correction *data* errors the controller observes.  In a real
#: BEER campaign this is a data-retention test at a crafted pattern; in
#: simulation it is the exact decode semantics.
Injector = Callable[[frozenset[int]], frozenset[int]]


@dataclass(frozen=True)
class Observation:
    """One (injected pattern, observed post-correction data errors) pair."""

    injected: frozenset[int]
    observed: frozenset[int]


class EccReverseEngineer:
    """Accumulates observations and solves for the parity submatrix.

    Args:
        k: number of data bits.
        p: number of parity bits (known from the chip geometry: ``n - k``).
    """

    def __init__(self, k: int, p: int) -> None:
        if k < 1 or p < 1:
            raise ValueError("k and p must be positive")
        self.k = k
        self.p = p
        self._rows: list[np.ndarray] = []
        #: per-constraint RHS as a p-bit mask (bit t = plane t's RHS)
        self._rhs: list[int] = []

    # ------------------------------------------------------------------
    # Constraint extraction
    # ------------------------------------------------------------------

    def _add_constraint(self, data_positions: Iterable[int], rhs_mask: int) -> None:
        row = np.zeros(self.k, dtype=np.uint8)
        for position in data_positions:
            row[position] ^= 1
        self._rows.append(row)
        self._rhs.append(rhs_mask)

    def add_observation(self, observation: Observation) -> bool:
        """Ingest one injection result; returns True if it yielded a
        usable linear constraint.

        Only weight-2 injections whose outcome is a miscorrection are
        informative for the linear system; everything else is skipped.
        """
        injected = observation.injected
        if len(injected) != 2:
            return False
        # A miscorrection adds exactly one new data error beyond the
        # injected data positions; reconstruct the flip target.
        injected_data = {b for b in injected if b < self.k}
        extra = observation.observed - injected_data
        missing = injected_data - observation.observed
        if len(extra) == 1 and not missing:
            # Decoder flipped a third *data* position m.
            target = next(iter(extra))
            terms = list(injected_data) + [target]
            rhs = 0
        elif not extra and len(missing) == 1 and len(injected_data) == 2:
            # Decoder flipped one of the injected data bits' partners in
            # parity space?  Impossible for SEC (columns distinct); skip.
            return False
        elif not extra and not missing and injected_data != injected:
            # Injected a parity bit whose pattern miscorrected onto parity:
            # invisible from data alone; skip.
            return False
        elif not extra and not missing and len(injected_data) == 2:
            # Both injected data errors visible, no third: the pattern was
            # detected-uncorrectable OR miscorrected onto a parity bit q.
            # Distinguishing them needs the syndrome, which the controller
            # cannot see — skip (conservative).
            return False
        else:
            return False
        parity_terms = [b - self.k for b in injected if b >= self.k]
        rhs_mask = rhs
        for q in parity_terms:
            rhs_mask ^= 1 << q
        self._add_constraint([t for t in terms if t < self.k], rhs_mask)
        return True

    def add_parity_probe(self, data_bit: int, parity_bit: int, observed: frozenset[int]) -> bool:
        """Ingest a {data_bit, parity cell} pair injection.

        If the pair miscorrects onto data position ``m``:
        ``x_i + x_m = e_q``; onto nothing visible beyond ``i``: skipped.
        """
        if not 0 <= data_bit < self.k:
            raise IndexError("data_bit out of range")
        if not 0 <= parity_bit < self.p:
            raise IndexError("parity_bit out of range")
        extra = observed - {data_bit}
        if len(extra) == 1 and data_bit in observed:
            target = next(iter(extra))
            self._add_constraint([data_bit, target], 1 << parity_bit)
            return True
        if not extra and not observed:
            # Fully corrected: cannot happen for a genuine double error.
            return False
        return False

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(self) -> SystematicCode | None:
        """Solve for the code; ``None`` until the system pins it uniquely.

        The constraint planes share one coefficient matrix, so the packed
        tier solves all ``p`` right-hand sides in a single elimination
        (:func:`repro.ecc.gf2w.solve_many`) instead of ``p`` separate
        ones — bit-identical per plane to the reference loop, which a
        forced ``REPRO_GF2_TIER=unpacked`` still exercises.
        """
        if not self._rows:
            return None
        matrix = np.stack(self._rows)
        if gf2.active_tier(matrix.size) == "packed":
            rhs_planes = (
                (np.asarray(self._rhs, dtype=np.int64)[:, None] >> np.arange(self.p))
                & 1
            ).astype(np.uint8)
            solutions, pivots = gf2w.solve_many(matrix, rhs_planes, with_pivots=True)
            if len(pivots) < self.k:
                return None
            if solutions is None:
                return None  # inconsistent observations (noisy injector)
            parity = solutions
        else:
            if gf2.rank(matrix) < self.k:
                return None
            parity = np.zeros((self.p, self.k), dtype=np.uint8)
            for plane in range(self.p):
                rhs = np.array([(mask >> plane) & 1 for mask in self._rhs], dtype=np.uint8)
                solution = gf2.solve(matrix, rhs)
                if solution is None:
                    return None  # inconsistent observations (noisy injector)
                parity[plane] = solution
        try:
            return SystematicCode(parity, correction_capability=1, name="reverse-engineered")
        except ValueError:
            return None

    @property
    def num_constraints(self) -> int:
        return len(self._rows)


def simulate_injection(code: SystematicCode) -> Injector:
    """White-box injector backed by the exact decode semantics.

    Stands in for a physical data-retention campaign: BEER plants the
    pattern by charging exactly the targeted cells and waiting out the
    refresh window (paper [145]); here the decode outcome is computed
    directly.
    """

    def inject(pattern: frozenset[int]) -> frozenset[int]:
        return analyze_error_pattern(code, pattern).data_errors

    return inject


def reverse_engineer(
    injector: Injector,
    k: int,
    p: int,
    rng: np.random.Generator,
    max_injections: int = 4096,
) -> SystematicCode | None:
    """Drive injections until the code is uniquely determined.

    Strategy: probe every {data bit, first parity cells} pair to anchor
    the system, then random data pairs until full rank.  Returns ``None``
    if the budget runs out first.
    """
    engineer = EccReverseEngineer(k, p)
    injections = 0
    # Phase 1: anchoring probes against each parity cell.
    for data_bit in range(k):
        for parity_bit in range(p):
            if injections >= max_injections:
                return engineer.solve()
            observed = injector(frozenset({data_bit, k + parity_bit}))
            injections += 1
            engineer.add_parity_probe(data_bit, parity_bit, observed)
        code = engineer.solve()
        if code is not None:
            return code
    # Phase 2: random data pairs.
    while injections < max_injections:
        i, j = rng.choice(k, size=2, replace=False)
        observed = injector(frozenset({int(i), int(j)}))
        injections += 1
        engineer.add_observation(Observation(frozenset({int(i), int(j)}), observed))
        if injections % 16 == 0:
            code = engineer.solve()
            if code is not None:
                return code
    return engineer.solve()
