"""Systematic linear block codes with bounded-distance syndrome decoding.

The paper's on-die ECC model (its §2.5) is a systematic linear block code:
a codeword stores the ``k`` data bits unchanged followed by ``p``
parity-check bits.  We adopt the layout

    codeword = [ data bits 0..k-1 | parity bits k..k+p-1 ]

so the parity-check matrix is ``H = [P | I_p]`` and the transposed generator
matrix is ``G^T = [I_k | P^T]`` for a ``p``-by-``k`` parity submatrix ``P``.
This matches Equation 1 of the paper up to column ordering, which the paper
notes is a free design parameter (§2.5.2).

Decoding is bounded-distance syndrome decoding: a lookup table maps every
syndrome produced by an error pattern of weight at most ``t`` (the
correction capability) to that pattern.  A nonzero syndrome outside the
table is *detected but uncorrectable* and leaves the codeword unmodified,
matching the behaviour of DRAM on-die ECC decoders which never stall a read.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from itertools import combinations

import numpy as np

from repro.ecc import gf2, gf2w
from repro.utils.bits import bits_to_int

__all__ = ["SystematicCode", "DecodeResult"]


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding a (possibly corrupted) codeword.

    Attributes:
        data: the post-correction dataword (length ``k``).
        corrected_positions: codeword positions the decoder flipped.  For a
            single-error-correcting code this is empty or a single position.
        detected_uncorrectable: True when the syndrome was nonzero but did
            not match any correctable error pattern.
    """

    data: np.ndarray
    corrected_positions: tuple[int, ...]
    detected_uncorrectable: bool

    @property
    def corrected(self) -> bool:
        return bool(self.corrected_positions)


class SystematicCode:
    """A systematic linear block code defined by its parity submatrix.

    Args:
        parity_submatrix: ``(p, k)`` binary matrix ``P``; column ``i`` gives
            the parity footprint of data bit ``i``.
        correction_capability: ``t``, the number of errors the bounded
            distance decoder corrects (1 for SEC Hamming, 2 for DEC BCH).
        name: optional human-readable identifier.

    Raises:
        ValueError: if the resulting code cannot correct ``t`` errors, i.e.
            two distinct correctable error patterns share a syndrome.
    """

    def __init__(
        self,
        parity_submatrix: np.ndarray,
        correction_capability: int = 1,
        name: str | None = None,
    ) -> None:
        parity = np.asarray(parity_submatrix, dtype=np.uint8)
        if parity.ndim != 2:
            raise ValueError(f"parity submatrix must be 2-D, got shape {parity.shape}")
        if not gf2.is_bit_matrix(parity):
            raise ValueError("parity submatrix must be binary")
        if correction_capability < 0:
            raise ValueError("correction capability must be non-negative")
        self._parity = parity
        self.p, self.k = parity.shape
        self.n = self.k + self.p
        self.t = int(correction_capability)
        self.name = name or f"({self.n},{self.k})t{self.t}"
        self._syndrome_table = self._build_syndrome_table()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @cached_property
    def parity_check_matrix(self) -> np.ndarray:
        """``H = [P | I_p]`` with shape ``(p, n)``."""
        return np.concatenate([self._parity, gf2.identity(self.p)], axis=1)

    @cached_property
    def generator_matrix_t(self) -> np.ndarray:
        """``G^T = [I_k | P^T]`` with shape ``(k, n)``."""
        return np.concatenate([gf2.identity(self.k), self._parity.T], axis=1)

    @property
    def parity_submatrix(self) -> np.ndarray:
        """The defining ``(p, k)`` submatrix ``P`` (do not mutate)."""
        return self._parity

    @cached_property
    def parity_bytes(self) -> bytes:
        """``P`` as bytes — the memo layer's per-code cache-key component."""
        return self._parity.tobytes()

    @property
    def data_positions(self) -> range:
        """Codeword positions holding systematically-encoded data bits."""
        return range(self.k)

    @property
    def parity_positions(self) -> range:
        """Codeword positions holding parity-check bits."""
        return range(self.k, self.n)

    def column(self, position: int) -> np.ndarray:
        """Column of ``H`` for a codeword position."""
        return self.parity_check_matrix[:, position]

    @cached_property
    def column_ints(self) -> tuple[int, ...]:
        """All columns of ``H`` packed into integers (LSB = row 0)."""
        return tuple(bits_to_int(self.parity_check_matrix[:, i]) for i in range(self.n))

    def column_int(self, position: int) -> int:
        """Column of ``H`` packed into an integer (LSB = row 0)."""
        return self.column_ints[position]

    @cached_property
    def parity_row_ints(self) -> tuple[int, ...]:
        """Rows of the parity submatrix ``P`` packed into integers
        (bit i = data bit i).  Used by the charge-constraint solvers."""
        return tuple(gf2._pack_rows(self._parity))

    @cached_property
    def parity_row_words(self) -> np.ndarray:
        """Rows of ``P`` bit-packed as ``(p, ceil(k/64))`` uint64 words.

        The packed-tier twin of :attr:`parity_row_ints`, consumed by the
        packed :class:`repro.analysis.atrisk.ChargeSystem` basis.  Do not
        mutate.
        """
        return gf2w.pack_rows(self._parity)

    def _build_syndrome_table(self) -> dict[int, tuple[int, ...]]:
        """Map syndrome integers to the correctable pattern producing them."""
        table: dict[int, tuple[int, ...]] = {}
        columns = [self.column_int(i) for i in range(self.n)]
        for weight in range(1, self.t + 1):
            for pattern in combinations(range(self.n), weight):
                syndrome = 0
                for position in pattern:
                    syndrome ^= columns[position]
                if syndrome == 0 or syndrome in table:
                    raise ValueError(
                        f"code {self.name} cannot correct {self.t} errors: "
                        f"pattern {pattern} aliases another correctable pattern"
                    )
                table[syndrome] = pattern
        return table

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode dataword(s) into codeword(s).

        Accepts a ``(k,)`` vector or a ``(batch, k)`` matrix and returns the
        corresponding ``(n,)`` or ``(batch, n)`` codewords.
        """
        arr = np.asarray(data, dtype=np.uint8)
        squeeze = arr.ndim == 1
        if squeeze:
            arr = arr.reshape(1, -1)
        if arr.shape[1] != self.k:
            raise ValueError(f"dataword length {arr.shape[1]} != k={self.k}")
        parity = gf2.matmul(arr, self._parity.T)
        codewords = np.concatenate([arr, parity], axis=1)
        return codewords[0] if squeeze else codewords

    def syndrome(self, codeword: np.ndarray) -> np.ndarray:
        """Syndrome ``s = H . c`` for codeword(s)."""
        arr = np.asarray(codeword, dtype=np.uint8)
        squeeze = arr.ndim == 1
        if squeeze:
            arr = arr.reshape(1, -1)
        if arr.shape[1] != self.n:
            raise ValueError(f"codeword length {arr.shape[1]} != n={self.n}")
        syndromes = gf2.matmul(arr, self.parity_check_matrix.T)
        return syndromes[0] if squeeze else syndromes

    def syndrome_int(self, codeword: np.ndarray) -> int:
        """Syndrome of a single codeword packed into an integer."""
        return bits_to_int(self.syndrome(codeword))

    def correction_for_syndrome(self, syndrome_value: int) -> tuple[int, ...] | None:
        """Correctable pattern for a syndrome integer, or None.

        Returns ``()`` for a zero syndrome, the codeword positions to flip
        for a correctable syndrome, and ``None`` for a detected-but-
        uncorrectable syndrome.
        """
        if syndrome_value == 0:
            return ()
        return self._syndrome_table.get(syndrome_value)

    def decode(self, codeword: np.ndarray) -> DecodeResult:
        """Bounded-distance decode of a single codeword."""
        arr = np.asarray(codeword, dtype=np.uint8).reshape(-1)
        if arr.shape[0] != self.n:
            raise ValueError(f"codeword length {arr.shape[0]} != n={self.n}")
        pattern = self.correction_for_syndrome(bits_to_int(self.syndrome(arr)))
        if pattern is None:
            return DecodeResult(
                data=arr[: self.k].copy(),
                corrected_positions=(),
                detected_uncorrectable=True,
            )
        corrected = arr.copy()
        for position in pattern:
            corrected[position] ^= 1
        return DecodeResult(
            data=corrected[: self.k],
            corrected_positions=pattern,
            detected_uncorrectable=False,
        )

    def syndrome_ints_batch(self, codewords: np.ndarray) -> np.ndarray:
        """Syndrome integers of a ``(batch, n)`` array in one GF(2) product.

        The multi-RHS product goes through the :mod:`repro.ecc.gf2`
        facade, so a large enough batch rides the packed ``gf2w.matmul``
        popcount kernel; the bit-rows then pack into the same integers
        :meth:`syndrome_int` produces (LSB = syndrome row 0), ready for
        :meth:`correction_for_syndrome` lookups.
        """
        arr = np.asarray(codewords, dtype=np.uint8)
        if arr.ndim != 2 or arr.shape[1] != self.n:
            raise ValueError(f"expected shape (batch, {self.n}), got {arr.shape}")
        syndromes = gf2.matmul(arr, self.parity_check_matrix.T)
        weights = 1 << np.arange(self.p, dtype=np.int64)
        return syndromes.astype(np.int64) @ weights

    def decode_batch(self, codewords: np.ndarray) -> np.ndarray:
        """Decode a ``(batch, n)`` array, returning ``(batch, k)`` datawords.

        This is the vectorized fast path used by the Monte-Carlo harness;
        per-word correction metadata is not materialized.
        """
        arr = np.asarray(codewords, dtype=np.uint8)
        if arr.ndim != 2 or arr.shape[1] != self.n:
            raise ValueError(f"expected shape (batch, {self.n}), got {arr.shape}")
        syndrome_ints = self.syndrome_ints_batch(arr)
        corrected = arr.copy()
        for row in np.flatnonzero(syndrome_ints):
            pattern = self._syndrome_table.get(int(syndrome_ints[row]))
            if pattern is not None:
                for position in pattern:
                    corrected[row, position] ^= 1
        return corrected[:, : self.k]

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SystematicCode {self.name} n={self.n} k={self.k} t={self.t}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SystematicCode):
            return NotImplemented
        return self.t == other.t and np.array_equal(self._parity, other._parity)

    def __hash__(self) -> int:
        return hash((self.t, self.parity_bytes, self._parity.shape))
