"""Error-pattern semantics of syndrome decoding.

These helpers answer the question at the heart of the paper's analysis
(its §3.2): *given that a set of codeword bits flips, which post-correction
data bits are in error?*  A post-correction error at data position ``i`` is

    E_i = R_i  XOR  (decoder flips position i)

which splits into a *direct* error (``R_i = 1`` and the decoder does not fix
it) or an *indirect* error / miscorrection (``R_i = 0`` but the syndrome
aliases column ``i``).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.ecc.linear_code import SystematicCode

__all__ = ["DecodeOutcomeKind", "PatternOutcome", "analyze_error_pattern", "syndrome_of_pattern"]


class DecodeOutcomeKind(Enum):
    """Classification of how the decoder handled a pre-correction pattern."""

    NO_ERROR = "no_error"
    CORRECTED = "corrected"
    MISCORRECTED = "miscorrected"
    DETECTED_UNCORRECTABLE = "detected_uncorrectable"
    UNDETECTED = "undetected"


@dataclass(frozen=True)
class PatternOutcome:
    """Post-correction consequences of a pre-correction error pattern.

    Attributes:
        pre_correction: the injected codeword error positions.
        flipped: positions the decoder flipped (its correction attempt).
        post_errors: codeword positions still (or newly) erroneous after
            decoding: the symmetric difference of ``pre_correction`` and
            ``flipped``.
        data_errors: ``post_errors`` restricted to data positions — what the
            memory controller observes.
        direct_errors: data errors that were raw bit errors (uncorrected).
        indirect_errors: data errors introduced by the decoder
            (miscorrections).
        kind: outcome classification.
    """

    pre_correction: frozenset[int]
    flipped: frozenset[int]
    post_errors: frozenset[int]
    data_errors: frozenset[int]
    direct_errors: frozenset[int]
    indirect_errors: frozenset[int]
    kind: DecodeOutcomeKind


def syndrome_of_pattern(code: SystematicCode, positions: frozenset[int] | set[int]) -> int:
    """Syndrome (as an integer) produced by flipping the given positions."""
    syndrome = 0
    for position in positions:
        syndrome ^= code.column_int(position)
    return syndrome


def analyze_error_pattern(
    code: SystematicCode, positions: frozenset[int] | set[int]
) -> PatternOutcome:
    """Compute the exact post-correction outcome of a pre-correction pattern.

    This is pure linear algebra — no Monte-Carlo — and is used both by the
    ground-truth at-risk computation and by HARP-A's miscorrection
    precomputation.
    """
    pre = frozenset(int(p) for p in positions)
    for position in pre:
        if not 0 <= position < code.n:
            raise IndexError(f"position {position} out of range [0, {code.n})")
    syndrome = syndrome_of_pattern(code, pre)
    correction = code.correction_for_syndrome(syndrome)
    flipped: frozenset[int] = frozenset() if correction is None else frozenset(correction)
    if not pre:
        kind = DecodeOutcomeKind.NO_ERROR
    elif syndrome == 0:
        # Nonzero pattern in the code's nullspace: silently passes through.
        kind = DecodeOutcomeKind.UNDETECTED
    elif correction is None:
        kind = DecodeOutcomeKind.DETECTED_UNCORRECTABLE
    elif flipped == pre:
        kind = DecodeOutcomeKind.CORRECTED
    else:
        kind = DecodeOutcomeKind.MISCORRECTED
    post = pre ^ flipped
    data_positions = set(code.data_positions)
    data_errors = frozenset(p for p in post if p in data_positions)
    direct = frozenset(p for p in data_errors if p in pre)
    indirect = data_errors - direct
    return PatternOutcome(
        pre_correction=pre,
        flipped=flipped,
        post_errors=frozenset(post),
        data_errors=data_errors,
        direct_errors=direct,
        indirect_errors=indirect,
        kind=kind,
    )
