"""Error-correcting code substrate: GF(2) algebra, Hamming and BCH codes.

This package implements the paper's on-die ECC model (§2.5): systematic
linear block codes with bounded-distance syndrome decoding, plus the exact
error-pattern semantics used throughout the analysis layer.
"""

from repro.ecc.bch import bch_dec_code
from repro.ecc.hamming import (
    canonical_sec_code,
    minimal_aliasing_code,
    paper_example_code,
    parity_bits_for,
    random_sec_code,
)
from repro.ecc.linear_code import DecodeResult, SystematicCode
from repro.ecc.reverse_engineering import (
    EccReverseEngineer,
    Observation,
    reverse_engineer,
    simulate_injection,
)
from repro.ecc.simple import NoEccCode, repetition_extension_code, single_parity_code
from repro.ecc.syndrome import (
    DecodeOutcomeKind,
    PatternOutcome,
    analyze_error_pattern,
    syndrome_of_pattern,
)

__all__ = [
    "SystematicCode",
    "DecodeResult",
    "random_sec_code",
    "canonical_sec_code",
    "paper_example_code",
    "minimal_aliasing_code",
    "parity_bits_for",
    "bch_dec_code",
    "NoEccCode",
    "single_parity_code",
    "repetition_extension_code",
    "DecodeOutcomeKind",
    "PatternOutcome",
    "analyze_error_pattern",
    "syndrome_of_pattern",
    "EccReverseEngineer",
    "Observation",
    "reverse_engineer",
    "simulate_injection",
]
