"""Polynomials over GF(2), represented as integer bitmasks.

Bit ``i`` of the integer is the coefficient of ``x**i``.  These routines
support the BCH substrate: generator polynomials are products of minimal
polynomials of powers of the field generator.
"""

from __future__ import annotations

from repro.ecc.gf2m import GF2m

__all__ = [
    "degree",
    "poly_mul",
    "poly_mod",
    "poly_divmod",
    "poly_gcd",
    "poly_eval_gf2m",
    "minimal_polynomial",
    "bch_generator_polynomial",
]


def degree(poly: int) -> int:
    """Degree of a polynomial bitmask; the zero polynomial has degree -1."""
    return poly.bit_length() - 1


def poly_mul(a: int, b: int) -> int:
    """Product of two GF(2) polynomials (carry-less multiplication)."""
    result = 0
    shift = 0
    while b:
        if b & 1:
            result ^= a << shift
        b >>= 1
        shift += 1
    return result


def poly_divmod(dividend: int, divisor: int) -> tuple[int, int]:
    """Quotient and remainder of GF(2) polynomial division."""
    if divisor == 0:
        raise ZeroDivisionError("polynomial division by zero")
    quotient = 0
    remainder = dividend
    divisor_degree = degree(divisor)
    while degree(remainder) >= divisor_degree:
        shift = degree(remainder) - divisor_degree
        quotient ^= 1 << shift
        remainder ^= divisor << shift
    return quotient, remainder


def poly_mod(dividend: int, divisor: int) -> int:
    """Remainder of GF(2) polynomial division."""
    return poly_divmod(dividend, divisor)[1]


def poly_gcd(a: int, b: int) -> int:
    """Greatest common divisor of two GF(2) polynomials."""
    while b:
        a, b = b, poly_mod(a, b)
    return a


def poly_eval_gf2m(poly: int, point: int, fld: GF2m) -> int:
    """Evaluate a GF(2)-coefficient polynomial at a GF(2^m) point (Horner)."""
    result = 0
    for bit_index in range(degree(poly), -1, -1):
        result = fld.multiply(result, point)
        if (poly >> bit_index) & 1:
            result ^= 1
    return result


def minimal_polynomial(element: int, fld: GF2m) -> int:
    """Minimal polynomial over GF(2) of a GF(2^m) element.

    Computed as the product of ``(x - c)`` over the conjugacy class
    ``{element, element^2, element^4, ...}``.  Coefficients necessarily land
    in GF(2).
    """
    conjugates = []
    current = element
    while current not in conjugates:
        conjugates.append(current)
        current = fld.multiply(current, current)
    # Multiply out prod (x + c) with coefficients in GF(2^m); result must
    # collapse to 0/1 coefficients.
    coefficients = [1]  # constant polynomial 1, low-order first
    for conjugate in conjugates:
        next_coefficients = [0] * (len(coefficients) + 1)
        for power, coefficient in enumerate(coefficients):
            next_coefficients[power + 1] ^= coefficient  # * x
            next_coefficients[power] ^= fld.multiply(coefficient, conjugate)
        coefficients = next_coefficients
    mask = 0
    for power, coefficient in enumerate(coefficients):
        if coefficient not in (0, 1):
            raise AssertionError("minimal polynomial has non-binary coefficient")
        if coefficient:
            mask |= 1 << power
    return mask


def bch_generator_polynomial(fld: GF2m, designed_t: int) -> int:
    """Generator polynomial of the primitive BCH code correcting ``t`` errors.

    LCM of the minimal polynomials of ``alpha, alpha^3, ..., alpha^(2t-1)``.
    """
    if designed_t < 1:
        raise ValueError("designed correction capability must be >= 1")
    generator = 1
    for i in range(1, 2 * designed_t, 2):
        minimal = minimal_polynomial(fld.alpha_power(i), fld)
        gcd = poly_gcd(generator, minimal)
        generator = poly_mul(generator, poly_divmod(minimal, gcd)[0])
    return generator
