"""A small, correct DPLL SAT solver.

Implements the classic Davis-Putnam-Logemann-Loveland procedure with unit
propagation and a most-frequent-literal branching heuristic.  It is the
repository's stand-in for Z3 (see DESIGN.md §3): the queries the paper
poses to Z3 are small (tens of variables), so a simple solver decides them
instantly, and its independence from the GF(2) fast path makes it a useful
cross-check in the property-based tests.
"""

from __future__ import annotations

from collections import Counter

from repro.sat.cnf import Cnf

__all__ = ["solve", "is_satisfiable"]


def _propagate(
    clauses: list[tuple[int, ...]],
    assignment: dict[int, bool],
) -> tuple[list[tuple[int, ...]], dict[int, bool]] | None:
    """Unit-propagate to fixpoint.  Returns (simplified, assignment) or None
    on conflict.  Inputs are not mutated."""
    work = list(clauses)
    current = dict(assignment)
    changed = True
    while changed:
        changed = False
        simplified: list[tuple[int, ...]] = []
        for clause in work:
            satisfied = False
            remaining: list[int] = []
            for literal in clause:
                variable = abs(literal)
                if variable in current:
                    if current[variable] == (literal > 0):
                        satisfied = True
                        break
                else:
                    remaining.append(literal)
            if satisfied:
                continue
            if not remaining:
                return None  # conflict: clause falsified
            if len(remaining) == 1:
                unit = remaining[0]
                current[abs(unit)] = unit > 0
                changed = True
            else:
                simplified.append(tuple(remaining))
        work = simplified
    return work, current


def _branch_literal(clauses: list[tuple[int, ...]]) -> int:
    """Pick the literal occurring most often (ties broken by value)."""
    counts: Counter[int] = Counter()
    for clause in clauses:
        counts.update(clause)
    literal, _ = max(counts.items(), key=lambda item: (item[1], -abs(item[0])))
    return literal


def _search(clauses: list[tuple[int, ...]], assignment: dict[int, bool]) -> dict[int, bool] | None:
    propagated = _propagate(clauses, assignment)
    if propagated is None:
        return None
    remaining, current = propagated
    if not remaining:
        return current
    literal = _branch_literal(remaining)
    for polarity in (literal > 0, literal <= 0):
        trial = dict(current)
        trial[abs(literal)] = polarity
        result = _search(remaining, trial)
        if result is not None:
            return result
    return None


def solve(cnf: Cnf) -> dict[int, bool] | None:
    """Satisfying assignment mapping every variable to a bool, or None.

    Variables unconstrained by the formula default to False.
    """
    if any(len(clause) == 0 for clause in cnf.clauses):
        return None
    result = _search(list(cnf.clauses), {})
    if result is None:
        return None
    for variable in range(1, cnf.num_variables + 1):
        result.setdefault(variable, False)
    return result


def is_satisfiable(cnf: Cnf) -> bool:
    """Decision form of :func:`solve`."""
    return solve(cnf) is not None
