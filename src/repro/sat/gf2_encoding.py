"""CNF encodings of the GF(2) decision problems the paper poses to Z3.

The realizability question — "does a data pattern exist charging this set
of cells?" — is encoded with one boolean variable per data bit and one XOR
constraint per charge constraint.  :mod:`repro.analysis.atrisk` answers the
same question by Gaussian elimination; the property-based test suite
asserts the two agree on random instances, which is how we validate the Z3
substitution.
"""

from __future__ import annotations

import numpy as np

from repro.ecc.linear_code import SystematicCode
from repro.sat.cnf import Cnf
from repro.sat.dpll import solve

__all__ = ["encode_charge_constraints", "sat_charge_assignment", "sat_is_charge_realizable"]


def encode_charge_constraints(
    code: SystematicCode,
    charged_ones: frozenset[int] | set[int],
    forced_zeros: frozenset[int] | set[int] = frozenset(),
) -> tuple[Cnf, list[int]]:
    """Build the CNF for the charge constraints.

    Returns ``(cnf, data_variables)`` where ``data_variables[i]`` is the SAT
    variable of data bit ``i``.
    """
    cnf = Cnf()
    data_variables = cnf.new_variables(code.k)
    parity = code.parity_submatrix
    for target, positions in ((1, charged_ones), (0, forced_zeros)):
        for position in positions:
            if not 0 <= position < code.n:
                raise IndexError(f"position {position} out of range [0, {code.n})")
            if position < code.k:
                cnf.add_unit(data_variables[position] if target else -data_variables[position])
            else:
                row = parity[position - code.k]
                involved = [data_variables[i] for i in np.flatnonzero(row)]
                cnf.add_xor(involved, target)
    return cnf, data_variables


def sat_charge_assignment(
    code: SystematicCode,
    charged_ones: frozenset[int] | set[int],
    forced_zeros: frozenset[int] | set[int] = frozenset(),
) -> np.ndarray | None:
    """A dataword satisfying the charge constraints, via the SAT solver."""
    if set(charged_ones) & set(forced_zeros):
        return None
    cnf, data_variables = encode_charge_constraints(code, charged_ones, forced_zeros)
    assignment = solve(cnf)
    if assignment is None:
        return None
    return np.array([1 if assignment[v] else 0 for v in data_variables], dtype=np.uint8)


def sat_is_charge_realizable(
    code: SystematicCode,
    charged_ones: frozenset[int] | set[int],
    forced_zeros: frozenset[int] | set[int] = frozenset(),
) -> bool:
    """Decision form of :func:`sat_charge_assignment`."""
    return sat_charge_assignment(code, charged_ones, forced_zeros) is not None
