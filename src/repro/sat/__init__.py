"""Minimal CNF/DPLL SAT substrate (the repository's Z3 substitute)."""

from repro.sat.cnf import Cnf
from repro.sat.dpll import is_satisfiable, solve
from repro.sat.gf2_encoding import (
    encode_charge_constraints,
    sat_charge_assignment,
    sat_is_charge_realizable,
)

__all__ = [
    "Cnf",
    "solve",
    "is_satisfiable",
    "encode_charge_constraints",
    "sat_charge_assignment",
    "sat_is_charge_realizable",
]
