"""CNF formula representation for the mini SAT solver.

Variables are positive integers; a literal is a nonzero integer whose sign
is the polarity (DIMACS convention).  A clause is a tuple of literals; a
formula is a list of clauses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Cnf"]


@dataclass
class Cnf:
    """A CNF formula builder.

    >>> cnf = Cnf()
    >>> x, y = cnf.new_variable(), cnf.new_variable()
    >>> cnf.add_clause([x, -y])
    >>> cnf.num_variables, len(cnf.clauses)
    (2, 1)
    """

    num_variables: int = 0
    clauses: list[tuple[int, ...]] = field(default_factory=list)

    def new_variable(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self.num_variables += 1
        return self.num_variables

    def new_variables(self, count: int) -> list[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_variable() for _ in range(count)]

    def add_clause(self, literals: list[int] | tuple[int, ...]) -> None:
        """Add a disjunction of literals; registers unseen variables."""
        clause = tuple(int(lit) for lit in literals)
        if not clause:
            # An empty clause is trivially unsatisfiable; keep it so the
            # solver reports UNSAT rather than silently dropping it.
            self.clauses.append(clause)
            return
        for literal in clause:
            if literal == 0:
                raise ValueError("literal 0 is not allowed (DIMACS convention)")
            self.num_variables = max(self.num_variables, abs(literal))
        self.clauses.append(clause)

    def add_unit(self, literal: int) -> None:
        """Convenience: assert a single literal."""
        self.add_clause([literal])

    def add_xor(self, variables: list[int], parity: int) -> None:
        """Assert XOR(variables) == parity via a Tseitin chain.

        Long XORs are split with auxiliary variables to keep clause counts
        linear: ``a xor b == c`` costs four clauses.
        """
        if parity not in (0, 1):
            raise ValueError("parity must be 0 or 1")
        if not variables:
            if parity == 1:
                self.add_clause([])  # 0 == 1: unsatisfiable
            return
        accumulator = variables[0]
        for variable in variables[1:]:
            fresh = self.new_variable()
            self._add_xor3(accumulator, variable, fresh)
            accumulator = fresh
        self.add_unit(accumulator if parity else -accumulator)

    def _add_xor3(self, a: int, b: int, c: int) -> None:
        """Clauses for ``c == a xor b``."""
        self.add_clause([-a, -b, -c])
        self.add_clause([a, b, -c])
        self.add_clause([a, -b, c])
        self.add_clause([-a, b, c])
