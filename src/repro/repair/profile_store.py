"""The error profile: the repair mechanism's list of at-risk bits (Fig 1).

Stored at logical (controller-visible) bit granularity, keyed by ECC word.
Supports the serialization round-trip a persistent profile would need
(profiles survive across boots in a real system).
"""

from __future__ import annotations

import json
from collections import defaultdict

__all__ = ["ErrorProfile"]


class ErrorProfile:
    """A set of at-risk logical bit locations, grouped per ECC word."""

    def __init__(self) -> None:
        self._bits: dict[int, set[int]] = defaultdict(set)

    def mark(self, word_index: int, bit_offset: int) -> None:
        """Record one at-risk data bit."""
        if word_index < 0 or bit_offset < 0:
            raise ValueError("addresses must be non-negative")
        self._bits[word_index].add(bit_offset)

    def mark_many(self, word_index: int, bit_offsets: frozenset[int] | set[int]) -> None:
        """Record several at-risk bits of one word."""
        for bit_offset in bit_offsets:
            self.mark(word_index, bit_offset)

    def bits_for(self, word_index: int) -> frozenset[int]:
        """At-risk bit offsets recorded for a word."""
        return frozenset(self._bits.get(word_index, ()))

    def is_marked(self, word_index: int, bit_offset: int) -> bool:
        return bit_offset in self._bits.get(word_index, ())

    @property
    def total_bits(self) -> int:
        """Total number of profiled at-risk bits."""
        return sum(len(bits) for bits in self._bits.values())

    @property
    def words(self) -> list[int]:
        """Word indices with at least one profiled bit, sorted."""
        return sorted(index for index, bits in self._bits.items() if bits)

    def to_json(self) -> str:
        """Serialize to a stable JSON document."""
        payload = {str(index): sorted(bits) for index, bits in self._bits.items() if bits}
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, document: str) -> "ErrorProfile":
        """Inverse of :meth:`to_json`."""
        profile = cls()
        for key, offsets in json.loads(document).items():
            for offset in offsets:
                profile.mark(int(key), int(offset))
        return profile
