"""Repair mechanisms, error profiles, and wasted-storage analysis."""

from repro.repair.mechanisms import (
    REPAIR_GRANULARITY_SURVEY,
    BlockGranularityRepair,
    IdealBitRepair,
    RepairMechanism,
    RepairStats,
)
from repro.repair.policy import RepairPlan, plan_row_sparing
from repro.repair.profile_store import ErrorProfile
from repro.repair.wasted_storage import (
    PAPER_GRANULARITIES,
    expected_wasted_ratio,
    monte_carlo_wasted_ratio,
    wasted_ratio_curve,
)

__all__ = [
    "ErrorProfile",
    "RepairMechanism",
    "IdealBitRepair",
    "BlockGranularityRepair",
    "RepairStats",
    "RepairPlan",
    "plan_row_sparing",
    "REPAIR_GRANULARITY_SURVEY",
    "expected_wasted_ratio",
    "monte_carlo_wasted_ratio",
    "wasted_ratio_curve",
    "PAPER_GRANULARITIES",
]
