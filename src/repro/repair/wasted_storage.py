"""Repair-granularity wasted-storage model (paper Fig 2).

Repairing uniform-random single-bit errors at granularity ``g`` sacrifices
the whole ``g``-bit block for every block containing at least one truly
erroneous bit.  The wasted fraction of total capacity is the expected
number of *non-erroneous* bits inside repaired blocks:

    E[waste ratio] = E[(g - X) * 1{X >= 1}] / g  where X ~ Binomial(g, p)
                   = (1 - p) - (1 - p)^g

which is 0 at ``g = 1`` (bit-granularity repair never wastes storage) and
approaches ``1 - p`` for large ``g`` — the paper's "over 99% of total
memory capacity in the worst case for a 1024-bit granularity at RBER
6.8e-3".
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "expected_wasted_ratio",
    "wasted_ratio_curve",
    "monte_carlo_wasted_ratio",
    "PAPER_GRANULARITIES",
]

#: The repair granularities plotted in the paper's Fig 2.
PAPER_GRANULARITIES = (1024, 512, 64, 32, 1)


def expected_wasted_ratio(rber: float, granularity: int) -> float:
    """Closed-form expected wasted-capacity ratio.

    >>> expected_wasted_ratio(1e-3, 1)
    0.0
    """
    if not 0.0 <= rber <= 1.0:
        raise ValueError(f"RBER {rber} outside [0, 1]")
    if granularity < 1:
        raise ValueError("granularity must be >= 1")
    survive = 1.0 - rber
    return survive - survive**granularity


def wasted_ratio_curve(
    rbers: np.ndarray | list[float],
    granularity: int,
) -> list[float]:
    """Fig 2 series: wasted ratio across a sweep of raw bit error rates."""
    return [expected_wasted_ratio(float(r), granularity) for r in rbers]


def monte_carlo_wasted_ratio(
    rber: float,
    granularity: int,
    num_blocks: int,
    rng: np.random.Generator,
) -> float:
    """Monte-Carlo estimator used to validate the closed form in tests."""
    if num_blocks < 1:
        raise ValueError("need at least one block")
    errors_per_block = rng.binomial(granularity, rber, size=num_blocks)
    wasted_bits = np.where(errors_per_block >= 1, granularity - errors_per_block, 0)
    return float(wasted_bits.sum()) / (num_blocks * granularity)
