"""Repair mechanisms at several granularities (paper §2.2, Table 1).

The paper's case study assumes an *ideal* bit-granularity repair mechanism:
every profiled bit is perfectly repaired (e.g. remapped to a spare), so
errors at profiled positions never reach the CPU.  Coarser mechanisms
(row sparing, page retirement) repair whole blocks and therefore waste
capacity on non-erroneous bits — quantified by
:mod:`repro.repair.wasted_storage`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.repair.profile_store import ErrorProfile

__all__ = [
    "RepairMechanism",
    "IdealBitRepair",
    "BlockGranularityRepair",
    "RepairStats",
    "REPAIR_GRANULARITY_SURVEY",
]

#: Paper Table 1: profiling granularity (bits) of prevalent repair schemes.
REPAIR_GRANULARITY_SURVEY = {
    "system page (RAPID, RIO, page retirement)": 32 * 1024,
    "DRAM external row (PPR, Agnos, RAIDR, DIVA)": 8 * 1024,
    "DRAM internal row/col (row/col sparing, Solar)": 1024,
    "cache block (FREE-p, CiDRA)": 512,
    "processor word (ArchShield)": 64,
    "byte (DRM)": 8,
    "single bit (ECP, SECRET, REMAP, SFaultMap, HOTH, FLOWER, SAFER, Bit-fix)": 1,
}


@dataclass(frozen=True)
class RepairStats:
    """Capacity accounting of a repair mechanism instance."""

    repaired_blocks: int
    repaired_bits: int
    profiled_bits: int

    @property
    def wasted_bits(self) -> int:
        """Non-at-risk bits sacrificed by block-granularity repair."""
        return self.repaired_bits - self.profiled_bits


class RepairMechanism(ABC):
    """Filters post-correction errors according to a repair policy."""

    def __init__(self, profile: ErrorProfile) -> None:
        self.profile = profile

    @abstractmethod
    def is_repaired(self, word_index: int, bit_offset: int) -> bool:
        """Whether reads of this bit are served from repair resources."""

    def unrepaired_errors(
        self, word_index: int, error_positions: frozenset[int] | set[int]
    ) -> frozenset[int]:
        """Errors that survive repair and reach the rest of the system."""
        return frozenset(
            position
            for position in error_positions
            if not self.is_repaired(word_index, position)
        )

    @abstractmethod
    def stats(self, bits_per_word: int) -> RepairStats:
        """Capacity accounting for the current profile."""


class IdealBitRepair(RepairMechanism):
    """The paper's ideal repair: every profiled bit, exactly, is repaired."""

    def is_repaired(self, word_index: int, bit_offset: int) -> bool:
        return self.profile.is_marked(word_index, bit_offset)

    def stats(self, bits_per_word: int) -> RepairStats:
        profiled = self.profile.total_bits
        return RepairStats(
            repaired_blocks=profiled,
            repaired_bits=profiled,
            profiled_bits=profiled,
        )


class BlockGranularityRepair(RepairMechanism):
    """Repair whole aligned blocks of ``granularity`` bits within a word.

    Models coarse mechanisms (byte / word / row-segment sparing): one
    profiled bit retires its entire block, wasting the block's remaining
    capacity.
    """

    def __init__(self, profile: ErrorProfile, granularity: int) -> None:
        super().__init__(profile)
        if granularity < 1:
            raise ValueError("granularity must be >= 1")
        self.granularity = granularity

    def _block_of(self, bit_offset: int) -> int:
        return bit_offset // self.granularity

    def is_repaired(self, word_index: int, bit_offset: int) -> bool:
        target_block = self._block_of(bit_offset)
        return any(
            self._block_of(marked) == target_block
            for marked in self.profile.bits_for(word_index)
        )

    def stats(self, bits_per_word: int) -> RepairStats:
        repaired_blocks = 0
        for word_index in self.profile.words:
            blocks = {self._block_of(offset) for offset in self.profile.bits_for(word_index)}
            repaired_blocks += len(blocks)
        return RepairStats(
            repaired_blocks=repaired_blocks,
            repaired_bits=repaired_blocks * self.granularity,
            profiled_bits=self.profile.total_bits,
        )
