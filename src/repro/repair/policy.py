"""Repair planning over profiled chips: row sparing plus bit spares.

The repair *mechanisms* (:mod:`repro.repair.mechanisms`) model what a
given granularity costs per profiled bit; this module is the *policy*
layer the fleet workload needs on top: given the at-risk bits a
profiling campaign identified on one chip, decide which rows to map to
spare rows and which leftover bits to cover with single-bit spare
resources, under a fixed per-chip budget — and account for the storage
economics of that decision.

The policy is deliberately simple and deterministic (greedy by
identified-bit count, ties broken by row index), because fleet results
must be bit-identical across backends and resume orders.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.faults import ChipGeometry

__all__ = ["RepairPlan", "plan_row_sparing"]


@dataclass(frozen=True)
class RepairPlan:
    """What one chip's repair stage decided, and what it cost.

    ``unrepaired`` holds the identified-but-unrepairable positions —
    bits the budget could not cover; they stay exposed exactly like
    bits the profiler missed.
    """

    #: Row indices remapped to spare rows, in repair order.
    repaired_rows: tuple[int, ...]
    #: Individual (word_index, position) bit spares assigned.
    bit_repairs: tuple[tuple[int, int], ...]
    #: Identified positions the budget left uncovered, per word.
    unrepaired: tuple[tuple[int, tuple[int, ...]], ...]
    #: Total spare storage consumed (row capacity plus one bit per
    #: bit spare), in bits.
    storage_bits: int
    #: Spare-row capacity not occupied by identified bits — the wasted
    #: share of coarse-granularity repair (the paper's Fig 2 theme).
    wasted_bits: int


def plan_row_sparing(
    identified_by_word: dict[int, tuple[int, ...]],
    geometry: ChipGeometry,
    row_bits: int,
    spare_rows: int,
    spare_bits: int,
) -> RepairPlan:
    """Greedy row sparing within a budget, bit spares for the remainder.

    Rows are ranked by how many identified at-risk bits they hold
    (descending, ties by row index ascending) and the top ``spare_rows``
    rows with any identified bits are remapped whole — ``row_bits`` is
    one spare row's storage capacity (codeword bits × words per row).
    Identified bits outside repaired rows get single-bit spares in
    (word, position) order until ``spare_bits`` runs out; whatever is
    left stays unrepaired.
    """
    if spare_rows < 0 or spare_bits < 0:
        raise ValueError("repair budgets must be >= 0")
    by_row: dict[int, int] = {}
    for word, positions in identified_by_word.items():
        row = geometry.row_of(word)
        by_row[row] = by_row.get(row, 0) + len(positions)
    ranked = sorted((row for row, count in by_row.items() if count), key=lambda row: (-by_row[row], row))
    repaired_rows = tuple(ranked[:spare_rows])
    covered_rows = set(repaired_rows)
    covered_bits = sum(by_row[row] for row in repaired_rows)
    remaining: list[tuple[int, int]] = [
        (word, position)
        for word in sorted(identified_by_word)
        if geometry.row_of(word) not in covered_rows
        for position in identified_by_word[word]
    ]
    bit_repairs = tuple(remaining[:spare_bits])
    leftover: dict[int, list[int]] = {}
    for word, position in remaining[spare_bits:]:
        leftover.setdefault(word, []).append(position)
    storage = len(repaired_rows) * row_bits + len(bit_repairs)
    return RepairPlan(
        repaired_rows=repaired_rows,
        bit_repairs=bit_repairs,
        unrepaired=tuple((word, tuple(bits)) for word, bits in sorted(leftover.items())),
        storage_bits=storage,
        wasted_bits=len(repaired_rows) * row_bits - covered_bits,
    )
