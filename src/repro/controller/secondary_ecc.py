"""Memory-controller-side secondary ECC for reactive profiling (paper §6.3).

During reactive profiling the secondary ECC watches every read.  Errors at
unrepaired positions form the pattern it must handle:

* within its correction capability — corrected *and identified*: the bits
  are recorded in the error profile so the repair mechanism covers them
  from then on;
* beyond its capability — the read escapes with uncorrected errors, the
  failure HARP's active-phase guarantee exists to prevent.

The model is deliberately conservative: an over-capability pattern is
counted as escaping in full, without crediting partial or lucky
corrections.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ReactiveOutcome", "SecondaryEcc"]


@dataclass(frozen=True)
class ReactiveOutcome:
    """Result of the secondary ECC processing one word's read."""

    corrected: frozenset[int]
    escaped: frozenset[int]

    @property
    def clean(self) -> bool:
        return not self.corrected and not self.escaped


class SecondaryEcc:
    """A ``t``-error-correcting code at on-die-ECC-word granularity.

    The paper requires the secondary correction capability to be at least
    the on-die ECC's (§6.3): a SEC on-die code can inject at most one
    indirect error at a time, so ``capability=1`` suffices once active
    profiling has covered all direct-risk bits.
    """

    def __init__(self, correction_capability: int = 1) -> None:
        if correction_capability < 0:
            raise ValueError("correction capability must be non-negative")
        self.correction_capability = correction_capability

    def process_read(self, unrepaired_errors: frozenset[int] | set[int]) -> ReactiveOutcome:
        """Classify one read's unrepaired post-correction errors."""
        errors = frozenset(unrepaired_errors)
        if len(errors) <= self.correction_capability:
            return ReactiveOutcome(corrected=errors, escaped=frozenset())
        return ReactiveOutcome(corrected=frozenset(), escaped=errors)
