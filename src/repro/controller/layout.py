"""Secondary-ECC word layout vs. on-die ECC word geometry (paper §6.3).

The secondary ECC word and the on-die ECC word need not coincide.  The
paper discusses the design space:

* **aligned** — one secondary word per on-die word (the paper's working
  assumption): the secondary word sees at most ``t`` concurrent indirect
  errors, where ``t`` is the on-die correction capability;
* **split** — one on-die word divided across several secondary words
  (e.g. across bus transfers): each secondary word covers a fragment of a
  single on-die word and still sees at most ``t`` errors, at the cost of
  more parity overhead and the multi-transfer reliability challenges the
  paper cites;
* **interleaved** — one secondary word spanning several on-die words:
  worst case, every covered on-die word contributes ``t`` errors
  simultaneously, so the secondary capability must scale with the
  interleaving degree ("which could require stronger secondary ECC").

This module models those layouts and computes the exact worst-case
concurrent error count each secondary word must handle, given the ground
truth of the covered on-die words.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.atrisk import GroundTruth, max_simultaneous_post_errors

__all__ = [
    "SecondaryWord",
    "aligned_layout",
    "split_layout",
    "interleaved_layout",
    "worst_case_concurrent_errors",
    "required_secondary_capability",
]


@dataclass(frozen=True)
class SecondaryWord:
    """One secondary-ECC word: the data bits it covers, per on-die word.

    Attributes:
        coverage: mapping from on-die word index to the set of *data* bit
            offsets (within that on-die word) this secondary word protects.
    """

    coverage: dict[int, frozenset[int]]

    def __post_init__(self) -> None:
        for word_index, bits in self.coverage.items():
            if word_index < 0:
                raise ValueError("on-die word indices must be non-negative")
            for bit in bits:
                if bit < 0:
                    raise ValueError("bit offsets must be non-negative")

    @property
    def total_bits(self) -> int:
        return sum(len(bits) for bits in self.coverage.values())


def aligned_layout(num_words: int, k: int) -> list[SecondaryWord]:
    """One secondary word per on-die ECC word (paper's assumption)."""
    return [
        SecondaryWord(coverage={word: frozenset(range(k))}) for word in range(num_words)
    ]


def split_layout(num_words: int, k: int, ways: int) -> list[SecondaryWord]:
    """Each on-die word divided into ``ways`` secondary words."""
    if ways < 1 or k % ways:
        raise ValueError(f"k={k} must divide evenly into {ways} ways")
    fragment = k // ways
    words = []
    for word in range(num_words):
        for way in range(ways):
            bits = frozenset(range(way * fragment, (way + 1) * fragment))
            words.append(SecondaryWord(coverage={word: bits}))
    return words


def interleaved_layout(num_words: int, k: int, ways: int) -> list[SecondaryWord]:
    """Secondary words spanning ``ways`` consecutive on-die words.

    Each secondary word takes a ``k / ways`` fragment from each of ``ways``
    on-die words (e.g. two 64-bit halves of two on-die words forming one
    128-bit secondary word).  ``num_words`` must be a multiple of ``ways``.
    """
    if ways < 1 or k % ways or num_words % ways:
        raise ValueError("ways must divide both k and num_words")
    fragment = k // ways
    words = []
    for group_start in range(0, num_words, ways):
        for way in range(ways):
            bits = frozenset(range(way * fragment, (way + 1) * fragment))
            coverage = {
                group_start + offset: bits for offset in range(ways)
            }
            words.append(SecondaryWord(coverage=coverage))
    return words


def worst_case_concurrent_errors(
    secondary_word: SecondaryWord,
    truths: dict[int, GroundTruth],
    missed: dict[int, frozenset[int]],
) -> int:
    """Worst-case simultaneous unrepaired errors inside one secondary word.

    Pre-correction errors in different on-die words are independent, so
    the worst cases add across the covered on-die words; within one on-die
    word the exact pattern enumeration of
    :func:`~repro.analysis.atrisk.max_simultaneous_post_errors` applies,
    restricted to the covered bit offsets.
    """
    total = 0
    for word_index, covered_bits in secondary_word.coverage.items():
        truth = truths.get(word_index)
        if truth is None:
            continue
        missed_in_word = missed.get(word_index, truth.post_correction_at_risk)
        total += max_simultaneous_post_errors(truth, missed_in_word & covered_bits)
    return total


def required_secondary_capability(
    layout: list[SecondaryWord],
    truths: dict[int, GroundTruth],
    missed: dict[int, frozenset[int]],
) -> int:
    """Correction capability the secondary ECC needs for a whole layout."""
    if not layout:
        raise ValueError("layout must contain at least one secondary word")
    return max(
        worst_case_concurrent_errors(word, truths, missed) for word in layout
    )
