"""End-to-end HARP-enabled memory system (paper Fig 5).

Composes the simulated chip (on-die ECC + error injection), an active
profiler per word, the error profile + ideal bit-repair mechanism, and the
secondary ECC performing reactive profiling.  This is the object-level
integration used by the examples and the integration test-suite; the
Fig 10 experiment computes the same quantities analytically for speed.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.controller.secondary_ecc import SecondaryEcc
from repro.memory.chip import OnDieEccChip
from repro.profiling.base import Profiler, ReadMode
from repro.repair.mechanisms import IdealBitRepair
from repro.repair.profile_store import ErrorProfile
from repro.utils.rng import derive_rng

__all__ = ["ActiveProfilingReport", "OperationReport", "MemorySystem"]

ProfilerFactory = Callable[..., Profiler]


@dataclass(frozen=True)
class ActiveProfilingReport:
    """Summary of an active-profiling campaign over the whole chip."""

    rounds: int
    words_profiled: int
    bits_identified: int


@dataclass
class OperationReport:
    """Tally of normal-operation reads with reactive profiling enabled."""

    reads: int = 0
    clean_reads: int = 0
    reactive_corrections: int = 0
    reactively_identified_bits: int = 0
    escaped_reads: int = 0
    escaped_bit_errors: int = 0
    #: word -> data positions that escaped at least once (would be
    #: software-visible corruption).
    escapes: dict[int, set[int]] = field(default_factory=dict)

    @property
    def escape_ber(self) -> float:
        """Escaped bit errors per read (unnormalized BER proxy)."""
        return self.escaped_bit_errors / self.reads if self.reads else 0.0


class MemorySystem:
    """A memory controller driving one chip with on-die ECC.

    Args:
        chip: the simulated memory chip (error profiles pre-attached).
        profiler_factory: builds the active profiler for each word; called
            as ``factory(code, seed)``.
        secondary: reactive-profiling ECC (defaults to single-error
            correcting, matching the paper's SEC on-die ECC assumption).
        seed: seed for profiler pattern randomness and operation data.
    """

    def __init__(
        self,
        chip: OnDieEccChip,
        profiler_factory: ProfilerFactory,
        secondary: SecondaryEcc | None = None,
        seed: int = 0,
    ) -> None:
        self.chip = chip
        self.profiler_factory = profiler_factory
        self.secondary = secondary or SecondaryEcc(1)
        self.seed = seed
        self.profile = ErrorProfile()
        self.repair = IdealBitRepair(self.profile)

    # ------------------------------------------------------------------
    # Phase 1: active profiling
    # ------------------------------------------------------------------

    def run_active_profiling(self, num_rounds: int) -> ActiveProfilingReport:
        """Profile every word of the chip and populate the error profile."""
        code = self.chip.code
        identified_total = 0
        for word_index in range(self.chip.num_words):
            profiler = self.profiler_factory(code, derive_seed_for(self.seed, word_index))
            for round_index in range(num_rounds):
                written = profiler.pattern_for_round(round_index)
                self.chip.write(word_index, written)
                if profiler.read_mode_for(round_index) == ReadMode.BYPASS:
                    outcome = self.chip.read_raw(word_index)
                else:
                    outcome = self.chip.read(word_index)
                mismatches = frozenset(
                    int(i) for i in np.flatnonzero(outcome.data != written)
                )
                profiler.observe(round_index, written, mismatches)
            identified = profiler.identified
            self.profile.mark_many(word_index, identified)
            identified_total += len(identified)
        return ActiveProfilingReport(
            rounds=num_rounds,
            words_profiled=self.chip.num_words,
            bits_identified=identified_total,
        )

    # ------------------------------------------------------------------
    # Phase 2: normal operation with reactive profiling
    # ------------------------------------------------------------------

    def operate(self, reads_per_word: int, data: np.ndarray | None = None) -> OperationReport:
        """Run normal operation: repair masks profiled bits, secondary ECC
        corrects and identifies what remains.

        Args:
            reads_per_word: number of read accesses per ECC word.
            data: operational dataword (defaults to all-ones, the true-cell
                worst case the paper's case study measures under).
        """
        code = self.chip.code
        pattern = (
            np.ones(code.k, dtype=np.uint8) if data is None else np.asarray(data, dtype=np.uint8)
        )
        report = OperationReport()
        for word_index in range(self.chip.num_words):
            self.chip.write(word_index, pattern)
            for _ in range(reads_per_word):
                outcome = self.chip.read(word_index)
                report.reads += 1
                mismatches = frozenset(
                    int(i) for i in np.flatnonzero(outcome.data != pattern)
                )
                unrepaired = self.repair.unrepaired_errors(word_index, mismatches)
                if not unrepaired:
                    report.clean_reads += 1
                    continue
                reactive = self.secondary.process_read(unrepaired)
                if reactive.corrected:
                    report.reactive_corrections += 1
                    new_bits = reactive.corrected - self.profile.bits_for(word_index)
                    report.reactively_identified_bits += len(new_bits)
                    # Reactive identification: repaired from now on.
                    self.profile.mark_many(word_index, reactive.corrected)
                if reactive.escaped:
                    report.escaped_reads += 1
                    report.escaped_bit_errors += len(reactive.escaped)
                    report.escapes.setdefault(word_index, set()).update(reactive.escaped)
        return report


def derive_seed_for(seed: int, word_index: int) -> int:
    """Stable per-word profiler seed."""
    return derive_rng(seed, "system-word", word_index).integers(0, 2**63 - 1)
