"""Memory-controller-side machinery: secondary ECC and the full system."""

from repro.controller.layout import (
    SecondaryWord,
    aligned_layout,
    interleaved_layout,
    required_secondary_capability,
    split_layout,
    worst_case_concurrent_errors,
)
from repro.controller.rank import MemoryRank, RankController, RankOperationReport
from repro.controller.scrubber import ScrubReport, Scrubber
from repro.controller.secondary_ecc import ReactiveOutcome, SecondaryEcc
from repro.controller.system import ActiveProfilingReport, MemorySystem, OperationReport

__all__ = [
    "ReactiveOutcome",
    "SecondaryEcc",
    "MemorySystem",
    "ActiveProfilingReport",
    "OperationReport",
    "SecondaryWord",
    "aligned_layout",
    "split_layout",
    "interleaved_layout",
    "worst_case_concurrent_errors",
    "required_secondary_capability",
    "Scrubber",
    "ScrubReport",
    "MemoryRank",
    "RankController",
    "RankOperationReport",
]
