"""ECC-scrubbing reactive profiler (paper §2.3.2).

Reactive profiling in practice is implemented as periodic *scrubbing*: the
controller walks all of memory on a fixed cadence, letting the secondary
ECC observe, correct, and record errors.  This module models that process
on top of :class:`~repro.controller.system.MemorySystem`-style components
and measures the identification latency of indirect-risk bits — the
quantity that determines how long the system stays exposed after active
profiling ends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.controller.secondary_ecc import SecondaryEcc
from repro.memory.chip import OnDieEccChip
from repro.repair.mechanisms import IdealBitRepair
from repro.repair.profile_store import ErrorProfile

__all__ = ["ScrubReport", "Scrubber"]


@dataclass
class ScrubReport:
    """Outcome of a scrubbing campaign."""

    passes: int
    reads: int
    corrected_events: int
    identified_bits: int
    escaped_reads: int
    #: 1-based scrub pass at which each newly-identified bit was found,
    #: keyed by (word index, bit offset).
    identification_pass: dict[tuple[int, int], int]

    @property
    def clean(self) -> bool:
        return self.escaped_reads == 0


class Scrubber:
    """Periodic whole-memory scrub with reactive identification.

    Args:
        chip: the memory chip under scrub (error profiles attached).
        profile: the repair mechanism's error profile; bits identified
            during scrubbing are appended here, exactly like HARP's
            reactive phase.
        secondary: the controller-side ECC watching each scrub read.
        data: the operational data pattern scrubbed against (defaults to
            all ones, the true-cell worst case).
    """

    def __init__(
        self,
        chip: OnDieEccChip,
        profile: ErrorProfile | None = None,
        secondary: SecondaryEcc | None = None,
        data: np.ndarray | None = None,
    ) -> None:
        self.chip = chip
        self.profile = profile if profile is not None else ErrorProfile()
        self.repair = IdealBitRepair(self.profile)
        self.secondary = secondary or SecondaryEcc(1)
        self.data = (
            np.ones(chip.code.k, dtype=np.uint8) if data is None else np.asarray(data, dtype=np.uint8)
        )

    def run(self, num_passes: int) -> ScrubReport:
        """Execute ``num_passes`` full scrub walks over the chip."""
        if num_passes < 0:
            raise ValueError("num_passes must be non-negative")
        report = ScrubReport(
            passes=num_passes,
            reads=0,
            corrected_events=0,
            identified_bits=0,
            escaped_reads=0,
            identification_pass={},
        )
        for word_index in range(self.chip.num_words):
            self.chip.write(word_index, self.data)
        for scrub_pass in range(1, num_passes + 1):
            for word_index in range(self.chip.num_words):
                outcome = self.chip.read(word_index)
                report.reads += 1
                mismatches = frozenset(
                    int(i) for i in np.flatnonzero(outcome.data != self.data)
                )
                unrepaired = self.repair.unrepaired_errors(word_index, mismatches)
                if not unrepaired:
                    continue
                reactive = self.secondary.process_read(unrepaired)
                if reactive.corrected:
                    report.corrected_events += 1
                    known = self.profile.bits_for(word_index)
                    for bit in reactive.corrected - known:
                        report.identified_bits += 1
                        report.identification_pass[(word_index, bit)] = scrub_pass
                    self.profile.mark_many(word_index, reactive.corrected)
                    # Scrubbing rewrites the corrected word, restoring the
                    # intended data before moving on.
                    self.chip.write(word_index, self.data)
                if reactive.escaped:
                    report.escaped_reads += 1
        return report
