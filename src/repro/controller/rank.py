"""Multi-chip memory rank (paper §6.3).

A rank gangs several chips: one controller access reads the same row from
every chip and concatenates their datawords into a block.  Each chip runs
its own on-die ECC, so a block spans multiple on-die ECC words — and the
controller must decide how to lay its secondary ECC words across them
(:mod:`repro.controller.layout`).  This module is the object-level
realization of that design space: it simulates rank reads and applies the
secondary ECC per layout, so the capability requirements the layout
analysis predicts can be observed as actual escapes.

Coordinate convention: within one rank row, ``SecondaryWord.coverage``
keys are *chip indices* (the on-die word a block bit belongs to is
determined by its chip).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.controller.layout import SecondaryWord
from repro.controller.secondary_ecc import SecondaryEcc
from repro.memory.chip import OnDieEccChip
from repro.repair.mechanisms import IdealBitRepair
from repro.repair.profile_store import ErrorProfile

__all__ = ["MemoryRank", "RankOperationReport", "RankController"]


class MemoryRank:
    """Several chips addressed in lockstep.

    All chips must share the ECC geometry and word count; a rank row ``r``
    is the tuple of word ``r`` in every chip.
    """

    def __init__(self, chips: list[OnDieEccChip]) -> None:
        if not chips:
            raise ValueError("a rank needs at least one chip")
        geometry = (chips[0].code.n, chips[0].code.k, chips[0].num_words)
        for chip in chips[1:]:
            if (chip.code.n, chip.code.k, chip.num_words) != geometry:
                raise ValueError("all chips in a rank must share geometry")
        self.chips = chips

    @property
    def num_chips(self) -> int:
        return len(self.chips)

    @property
    def num_rows(self) -> int:
        return self.chips[0].num_words

    @property
    def k(self) -> int:
        return self.chips[0].code.k

    def write_row(self, row: int, data: np.ndarray) -> None:
        """Write one block: ``data`` has shape ``(num_chips, k)``."""
        arr = np.asarray(data, dtype=np.uint8)
        if arr.shape != (self.num_chips, self.k):
            raise ValueError(f"expected shape {(self.num_chips, self.k)}, got {arr.shape}")
        for chip_index, chip in enumerate(self.chips):
            chip.write(row, arr[chip_index])

    def read_row(self, row: int) -> list[np.ndarray]:
        """Read one block through every chip's on-die ECC."""
        return [chip.read(row).data for chip in self.chips]


@dataclass
class RankOperationReport:
    """Escape/identification accounting of a rank operation campaign."""

    reads: int = 0
    secondary_corrections: int = 0
    identified_bits: int = 0
    escaped_secondary_words: int = 0
    escaped_bit_errors: int = 0
    #: per secondary-word index: worst simultaneous unrepaired errors seen.
    worst_concurrent: dict[int, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return self.escaped_secondary_words == 0


class RankController:
    """Controller driving a rank with a secondary-word layout.

    Args:
        rank: the chips.
        layout: secondary words over chip indices (see module docstring).
        secondary: the secondary ECC applied per secondary word.
        profiles: per-chip error profiles backing the repair mechanism
            (fresh ones are created when omitted).
    """

    def __init__(
        self,
        rank: MemoryRank,
        layout: list[SecondaryWord],
        secondary: SecondaryEcc | None = None,
        profiles: list[ErrorProfile] | None = None,
    ) -> None:
        if not layout:
            raise ValueError("layout must contain at least one secondary word")
        covered: dict[int, set[int]] = {}
        for word in layout:
            for chip_index, bits in word.coverage.items():
                if chip_index >= rank.num_chips:
                    raise ValueError(f"layout references chip {chip_index} beyond the rank")
                overlap = covered.setdefault(chip_index, set()) & set(bits)
                if overlap:
                    raise ValueError(f"layout covers chip {chip_index} bits {overlap} twice")
                covered[chip_index] |= set(bits)
        self.rank = rank
        self.layout = layout
        self.secondary = secondary or SecondaryEcc(1)
        self.profiles = (
            profiles if profiles is not None else [ErrorProfile() for _ in rank.chips]
        )
        if len(self.profiles) != rank.num_chips:
            raise ValueError("need one error profile per chip")
        self._repairs = [IdealBitRepair(profile) for profile in self.profiles]

    def operate(
        self, reads_per_row: int, data: np.ndarray | None = None
    ) -> RankOperationReport:
        """Run reads over every row, applying repair + secondary ECC."""
        block = (
            np.ones((self.rank.num_chips, self.rank.k), dtype=np.uint8)
            if data is None
            else np.asarray(data, dtype=np.uint8)
        )
        report = RankOperationReport()
        for row in range(self.rank.num_rows):
            self.rank.write_row(row, block)
            for _ in range(reads_per_row):
                observed = self.rank.read_row(row)
                report.reads += 1
                unrepaired_by_chip = {}
                for chip_index, data_read in enumerate(observed):
                    mismatches = frozenset(
                        int(i) for i in np.flatnonzero(data_read != block[chip_index])
                    )
                    unrepaired_by_chip[chip_index] = self._repairs[
                        chip_index
                    ].unrepaired_errors(row, mismatches)
                for word_index, word in enumerate(self.layout):
                    in_word = {
                        (chip_index, bit)
                        for chip_index, bits in word.coverage.items()
                        for bit in unrepaired_by_chip.get(chip_index, frozenset())
                        if bit in bits
                    }
                    count = len(in_word)
                    report.worst_concurrent[word_index] = max(
                        report.worst_concurrent.get(word_index, 0), count
                    )
                    if count == 0:
                        continue
                    reactive = self.secondary.process_read(in_word)
                    if reactive.corrected:
                        report.secondary_corrections += 1
                        for chip_index, bit in reactive.corrected:
                            if not self.profiles[chip_index].is_marked(row, bit):
                                report.identified_bits += 1
                            self.profiles[chip_index].mark(row, bit)
                    if reactive.escaped:
                        report.escaped_secondary_words += 1
                        report.escaped_bit_errors += len(reactive.escaped)
        return report
